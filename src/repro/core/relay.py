"""The middle-box packet interception API (paper §III-B).

Two designs, as evaluated in the paper:

- :class:`PassiveRelay` — a netfilter-style hook on the middle-box's
  FORWARD path.  Every data packet pays a kernel→user copy and the
  service's per-byte processing *inline*, delaying the packet (and,
  through ACK clocking, the sender).
- :class:`ActiveRelay` — the paper's contribution.  The middle-box NATs
  the flow to a local *pseudo-server*, terminating TCP, so data packets
  are ACKed immediately (one hop instead of the full path).  A
  *pseudo-client* re-originates the flow toward the next hop, binding
  the same source port so the Fig. 3 steering rules keep matching.
  Received PDUs are journaled in simulated NVM until the next hop ACKs
  them, preserving consistency across the split.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cloud.params import CloudParams
from repro.core.middlebox import MiddleBox
from repro.iscsi.pdu import ISCSI_PORT, LoginRequestPdu, ScsiCommandPdu, ScsiResponsePdu
from repro.net.nat import NatRule
from repro.net.packet import Packet
from repro.net.tcp import ConnectionReset, EOF, RESET, TcpListener, TcpSegment, TcpSocket
from repro.sim import Simulator


class RelayMode(str, enum.Enum):
    FWD = "fwd"            # pure IP forwarding, no interception
    PASSIVE = "passive"    # in-path hook, per-packet copies
    ACTIVE = "active"      # split TCP, immediate ACK


@dataclass
class RelayContext:
    """Handed to a service for each PDU."""

    direction: str
    forward: Callable[[object], None]
    reply: Callable[[object], None]
    consumed: bool = False


class PassiveRelay:
    """FORWARD-chain hook: copies and processes packets in-path."""

    def __init__(self, sim: Simulator, middlebox: MiddleBox, params: CloudParams):
        self.sim = sim
        self.middlebox = middlebox
        self.params = params
        self.packets_copied = 0
        #: observability bus hook; None = uninstrumented fast path
        self.obs = None
        #: :class:`repro.integrity.IntegrityLayer` — when set, every
        #: relayed PDU gets this hop's traversal mark.  None = off.
        self.integrity = None
        #: adversarial egress hook (repro.faults RelayAdversary): a
        #: compromised middle-box mutating PDUs *after* stamping.
        self.adversary = None
        middlebox.stack.forward_hook = self._hook

    def _hook(self, packet: Packet):
        segment = packet.payload
        if not isinstance(segment, TcpSegment) or segment.kind != "data":
            return
        self.packets_copied += 1
        obs = self.obs
        span = None
        if obs is not None:
            obs.metrics.counter("relay.passive_copies", self.middlebox.name).inc()
            if packet.ctx is not None:
                span = obs.span(
                    "relay.passive", parent=packet.ctx,
                    target=self.middlebox.name, bytes=segment.length,
                )
        # one syscall-and-copy per packet — the cost the paper measures
        yield from self.middlebox.cpu.consume(self.params.passive_copy_cost)
        service = self.middlebox.service
        if service is not None:
            cost = service.cpu_per_byte * segment.length
            if cost:
                yield from self.middlebox.cpu.consume(cost)
        if segment.is_last and segment.message is not None:
            direction = "upstream" if packet.dst_port == ISCSI_PORT else "downstream"
            if service is not None:
                service.pdus_processed += 1
                if direction == "upstream":
                    segment.message = service.transform_upstream(segment.message)
                else:
                    segment.message = service.transform_downstream(segment.message)
            if self.integrity is not None:
                self.integrity.hop_process(
                    segment.message,
                    self.middlebox.name,
                    transformed=service is not None and service.transforms_payload,
                )
            if self.adversary is not None:
                out = self.adversary.on_egress(
                    segment.message, direction, None, streamed=True
                )
                if out is not None:
                    segment.message = out
        if span is not None:
            span.finish()


@dataclass
class NvmEntry:
    entry_id: int
    pdu: object
    direction: str
    stored_at: float
    #: (vm-side remote_ip, remote_port) — identifies the flow, so a
    #: middle-box restart can replay exactly this flow's entries on the
    #: re-established pair (NVM survives the crash)
    flow: tuple = ()


@dataclass
class RelayPair:
    """One spliced connection: VM-side server socket, storage-side
    pseudo-client.  ``client`` is replaced on downstream recovery."""

    server: TcpSocket
    client: TcpSocket
    reconnects: int = 0
    closed: bool = False  # the VM side ended the flow; no recovery
    #: the relay itself reset the VM side (downstream unrecoverable) —
    #: the journal is kept, unlike a genuine VM-initiated close
    abandoned: bool = False
    login_pdu: object = None  # remembered for session re-establishment


class ActiveRelay:
    """Split-TCP relay with immediate ACKs and an NVM journal.

    If the downstream (storage-side) connection fails and
    ``recover_downstream`` is on, the relay reconnects the
    pseudo-client — the existing gateway conntrack state still maps
    the same 4-tuple — and *replays* every journaled upstream PDU the
    next hop never acknowledged, in arrival order.  Duplicate writes
    are idempotent (same offset/payload) and duplicate responses are
    dropped by the initiator's task-tag table.
    """

    _entry_ids = itertools.count(1)

    def __init__(
        self,
        sim: Simulator,
        middlebox: MiddleBox,
        egress_ip: str,
        params: CloudParams,
        egress_port: int = ISCSI_PORT,
        cookie: Optional[str] = None,
        recover_downstream: bool = True,
        max_reconnects: int = 3,
        reconnect_delay: float = 0.05,
    ):
        self.sim = sim
        self.middlebox = middlebox
        self.egress_ip = egress_ip
        self.egress_port = egress_port
        self.params = params
        self.cookie = cookie or f"active-relay:{middlebox.name}"
        self.recover_downstream = recover_downstream
        self.max_reconnects = max_reconnects
        self.reconnect_delay = reconnect_delay
        #: optional :class:`repro.analysis.EventLog` for recovery timelines
        self.event_log = None
        #: observability bus hook: when set, relayed PDUs run under
        #: spans and NVM journal transitions emit events.  None = off.
        self.obs = None
        #: :class:`repro.integrity.IntegrityLayer` — when set, every
        #: forwarded PDU gets this hop's traversal mark stamped at
        #: egress (crash replays re-send already-stamped journal
        #: entries and are *not* re-marked).  None = off.
        self.integrity = None
        #: adversarial egress hook (repro.faults RelayAdversary),
        #: applied after stamping: a compromised box tampering,
        #: replaying, or holding PDUs it relays.  None = off.
        self.adversary = None
        #: the NVM journal: PDUs received but not yet ACKed by next hop.
        #: For SCSI commands "ACKed" means *responded to* — a TCP ACK
        #: only proves the next hop's socket buffered the bytes, not
        #: that the target executed the command, so a crash between the
        #: two would lose a write the relay already ACKed to the VM.
        self.nvm: dict[int, NvmEntry] = {}
        #: task_tag -> entry_id for journaled upstream commands, so the
        #: matching downstream response retires the right entry
        self._command_entries: dict[int, int] = {}
        self.nvm_peak = 0
        self.pdus_relayed = 0
        self.pdus_replayed = 0
        self.pairs: list[RelayPair] = []
        # REDIRECT: flows addressed to the egress gateway land on the
        # local pseudo-server instead (PREROUTING only — the
        # pseudo-client's own connects toward egress must not loop back)
        middlebox.stack.nat.install(
            NatRule(
                match_dst_ip=egress_ip,
                match_dst_port=egress_port,
                dnat_ip=middlebox.ip,
                hook="prerouting",
                cookie=self.cookie,
            )
        )
        self.listener = TcpListener(
            sim,
            middlebox.stack,
            middlebox.ip,
            egress_port,
            mss=params.mss,
            window=params.tcp_window,
            reliable=params.tcp_reliable,
            rto=params.tcp_rto,
            max_retransmits=params.tcp_max_retransmits,
        )
        self.listener.express_label = f"relay:{middlebox.name}"
        sim.process(self._accept_loop(), name=f"active-relay:{middlebox.name}")

    # -- connection handling ---------------------------------------------

    def _accept_loop(self):
        while True:
            server_sock: TcpSocket = yield self.listener.accept()
            self.sim.process(
                self._relay_pair(server_sock), name=f"relay-pair:{self.middlebox.name}"
            )

    def _new_client_socket(self, server_sock: TcpSocket) -> TcpSocket:
        # pseudo-client: same source port so steering rules keep matching
        socket = TcpSocket(
            self.sim,
            self.middlebox.stack,
            local_ip=self.middlebox.ip,
            local_port=server_sock.remote_port,
            mss=self.params.mss,
            window=self.params.tcp_window,
            reliable=self.params.tcp_reliable,
            rto=self.params.tcp_rto,
            max_retransmits=self.params.tcp_max_retransmits,
        )
        socket.express_label = f"relay:{self.middlebox.name}"
        return socket

    def _log(self, kind: str, **detail) -> None:
        if self.event_log is not None:
            self.event_log.record(self.sim.now, kind, self.middlebox.name, **detail)

    def _relay_pair(self, server_sock: TcpSocket):
        from repro.sim import Store

        # capture chunks from the VM side immediately — data may follow
        # the handshake before the onward connection is up
        up_queue = Store(self.sim)
        server_sock.chunk_listener = lambda segment: up_queue.put(("chunk", segment))
        self.sim.process(self._sentinel_watcher(server_sock, up_queue))
        client_sock = self._new_client_socket(server_sock)
        try:
            yield client_sock.connect(self.egress_ip, self.egress_port)
        except ConnectionReset:
            # next hop unreachable: refuse the flow so the VM side can
            # run its own recovery instead of waiting forever
            self._log("relay.connect-failed")
            if server_sock.state == "established":
                server_sock.reset()
            return
        pair = RelayPair(server_sock, client_sock)
        self.pairs.append(pair)
        self.sim.process(self._pump(up_queue, server_sock, pair, "upstream"))
        self._start_downstream_pump(pair)

    def _start_downstream_pump(self, pair: RelayPair) -> None:
        from repro.sim import Store

        down_queue = Store(self.sim)
        pair.client.chunk_listener = lambda segment: down_queue.put(("chunk", segment))
        self.sim.process(self._sentinel_watcher(pair.client, down_queue))
        self.sim.process(self._pump(down_queue, pair.client, pair, "downstream"))

    def _dst_socket(self, pair: RelayPair, direction: str) -> TcpSocket:
        """Resolved at send time: recovery may swap ``pair.client``."""
        return pair.client if direction == "upstream" else pair.server

    def _src_socket(self, pair: RelayPair, direction: str) -> TcpSocket:
        return pair.server if direction == "upstream" else pair.client

    def _pump(self, queue, src: TcpSocket, pair: RelayPair, direction: str):
        """Cut-through relay loop for one direction.

        Data arrives one TCP segment at a time (``chunk_listener``):
        single-segment PDUs take the classic receive→process→forward
        path; multi-segment PDUs are *streamed* — each received chunk
        is credited to an outgoing copy immediately after the service's
        per-byte CPU charge, so a large write pipelines through the
        middle-box instead of being stored and forwarded whole.  The
        final chunk carries the PDU object, which the service may
        transform before it is attached to the outgoing stream.
        """
        service = self.middlebox.service
        streams: dict[int, tuple] = {}  # message_id -> (handle, entry, socket)
        while True:
            kind, payload = yield queue.get()
            if kind == "ctrl":
                if (
                    payload is RESET
                    and direction == "downstream"
                    and self.recover_downstream
                    and not pair.closed
                    and pair.reconnects < self.max_reconnects
                ):
                    self.sim.process(self._recover(pair))
                    return  # a fresh downstream pump starts on success
                other = self._dst_socket(pair, direction)
                if direction == "upstream":
                    pair.closed = True  # the VM ended the flow
                    if not pair.abandoned:
                        self._drop_flow_entries(
                            (pair.server.remote_ip, pair.server.remote_port)
                        )
                if payload is RESET and other.state == "established":
                    if direction == "downstream":
                        pair.abandoned = True
                    other.reset()
                if payload is EOF:
                    other.close()
                if service is not None:
                    service.on_flow_closed("reset" if payload is RESET else "eof")
                return
            if kind == "msg":
                # a whole message that arrived before the chunk listener
                # was installed (e.g. the login PDU during attach)
                yield from self._relay_whole(payload[0], pair, direction, service)
                continue
            segment = payload
            if service is not None and service.cpu_per_byte and segment.length:
                # processing happens off the ACK path but before forwarding
                yield from self.middlebox.cpu.consume(
                    service.cpu_per_byte * segment.length
                )
            if segment.message_size <= segment.length and segment.message_id not in streams:
                yield from self._relay_whole(segment.message, pair, direction, service)
                continue
            yield from self._relay_chunk(segment, pair, direction, service, streams)

    def _track_command(self, entry: NvmEntry) -> None:
        """Journaled upstream commands are retired by their downstream
        response, not by the next hop's TCP ACK."""
        if entry.direction == "upstream" and isinstance(entry.pdu, ScsiCommandPdu):
            self._command_entries[entry.pdu.task_tag] = entry.entry_id

    def _retire_command(self, response: ScsiResponsePdu) -> None:
        entry_id = self._command_entries.pop(response.task_tag, None)
        if entry_id is not None:
            self.nvm.pop(entry_id, None)
            if self.obs is not None:
                self.obs.event(
                    "nvm.retire",
                    target=self.middlebox.name,
                    ctx=getattr(response, "ctx", None),
                    journal=len(self.nvm),
                )

    def _drop_flow_entries(self, flow) -> None:
        """The VM side ended the flow: nobody is waiting for these."""
        for entry in [e for e in self.nvm.values() if e.flow == flow]:
            self.nvm.pop(entry.entry_id, None)
            if isinstance(entry.pdu, ScsiCommandPdu):
                self._command_entries.pop(entry.pdu.task_tag, None)

    def _relay_whole(self, pdu, pair: RelayPair, direction, service):
        is_login = direction == "upstream" and isinstance(pdu, LoginRequestPdu)
        if is_login:
            pair.login_pdu = pdu  # needed again if the downstream leg fails
        if direction == "downstream" and isinstance(pdu, ScsiResponsePdu):
            self._retire_command(pdu)
        flow = (pair.server.remote_ip, pair.server.remote_port)
        entry = NvmEntry(next(self._entry_ids), pdu, direction, self.sim.now, flow)
        self.nvm[entry.entry_id] = entry
        self.nvm_peak = max(self.nvm_peak, len(self.nvm))
        self.pdus_relayed += 1
        obs = self.obs
        span = None
        if obs is not None:
            trace_ctx = getattr(pdu, "ctx", None)
            span = obs.span(
                "relay.active", parent=trace_ctx,
                target=self.middlebox.name, direction=direction,
            )
            span.event("nvm.append", target=self.middlebox.name,
                       journal=len(self.nvm))
            obs.metrics.counter("relay.pdus", self.middlebox.name).inc()
            obs.metrics.gauge("relay.nvm", self.middlebox.name).set(len(self.nvm))
        ctx = self._make_context(entry, pair, direction)
        if service is not None:
            svc_span = None
            if span is not None:
                svc_span = obs.span(f"service.{service.name}", parent=span,
                                    target=self.middlebox.name)
            yield from service.process(pdu, direction, ctx, charged=True)
            if svc_span is not None:
                svc_span.finish()
        else:
            ctx.forward(pdu)
        if span is not None:
            span.finish()
        if not ctx.consumed:
            self.nvm.pop(entry.entry_id, None)
        else:
            self._track_command(entry)
        if is_login and len(self.nvm) > 1:
            # a login on a flow with older journal entries means the
            # middle-box restarted: replay what the crash interrupted
            self._replay_stale(pair, entry.entry_id, flow)

    def _relay_chunk(self, segment, pair: RelayPair, direction, service, streams):
        buffered = service is not None and service.requires_full_pdu
        state = streams.get(segment.message_id)
        if state is None:
            flow = (pair.server.remote_ip, pair.server.remote_port)
            entry = NvmEntry(next(self._entry_ids), None, direction, self.sim.now, flow)
            self.nvm[entry.entry_id] = entry
            self.nvm_peak = max(self.nvm_peak, len(self.nvm))
            if self.obs is not None:
                self.obs.event(
                    "nvm.append",
                    target=self.middlebox.name,
                    ctx=getattr(segment.message, "ctx", None),
                    journal=len(self.nvm),
                )
                self.obs.metrics.counter("relay.pdus", self.middlebox.name).inc()
                self.obs.metrics.gauge("relay.nvm", self.middlebox.name).set(
                    len(self.nvm)
                )
            if buffered:
                # store-and-forward: no outgoing stream until the
                # service has ruled on the complete PDU (gatekeepers
                # like access control may drop it or reply instead)
                state = (None, entry, None)
            else:
                dst = self._dst_socket(pair, direction)
                try:
                    handle = dst.send_stream(segment.message_size)
                except ConnectionReset:
                    # the outgoing socket already died: journal-only
                    # mode — the completed PDU stays in NVM for replay
                    state = (None, entry, dst)
                else:
                    self.sim.process(
                        self._discard_when_delivered(dst, handle.message_id, entry.entry_id)
                    )
                    state = (handle, entry, dst)
            streams[segment.message_id] = state
        handle, entry, opened_on = state
        if not segment.is_last:
            if handle is not None:
                handle.credit(segment.length)
            return
        del streams[segment.message_id]
        pdu = segment.message
        entry.pdu = pdu
        self.pdus_relayed += 1
        if handle is None and opened_on is not None:
            # journal-only mode: the socket was already dead when the
            # stream opened — keep the transformed PDU journaled; the
            # send fails quietly and recovery replays it
            transformed = self._transform_only(pdu, direction, service)
            self._hop_stamp(transformed)
            entry.pdu = transformed
            self._track_command(entry)
            self._send_tracked_safe(self._dst_socket(pair, direction), transformed, entry)
            return
        if handle is None:
            # buffered mode: full classic processing (forward or reply)
            ctx = self._make_context(entry, pair, direction)
            yield from service.process(pdu, direction, ctx, charged=True)
            if not ctx.consumed:
                self.nvm.pop(entry.entry_id, None)
            else:
                self._track_command(entry)
            return
        if opened_on.state == "reset":
            # the outgoing socket died mid-stream; journal the completed
            # PDU — recovery replays it on the fresh connection
            transformed = self._transform_only(pdu, direction, service)
            self._hop_stamp(transformed)
            entry.pdu = transformed
            self._track_command(entry)
            self._send_tracked_safe(self._dst_socket(pair, direction), transformed, entry)
            return

        def finish_streamed(out_pdu) -> None:
            # stamp (and let the adversary tamper) at the moment the
            # message object is attached to the already-credited stream
            self._hop_stamp(out_pdu)
            out = self._adversary_egress(
                out_pdu, direction, self._dst_socket(pair, direction), streamed=True
            )
            handle.finish(out if out is not None else out_pdu)

        if service is not None:
            ctx = RelayContext(
                direction=direction,
                forward=finish_streamed,
                reply=self._reject_streamed_reply,
            )
            yield from service.process(pdu, direction, ctx, charged=True)
            if not handle.finished:
                # service neither forwarded nor transformed: pass through
                finish_streamed(pdu)
        else:
            finish_streamed(pdu)
        # journal what actually went on the wire, so a replay after a
        # crash re-sends the transformed PDU
        entry.pdu = handle.message
        self._track_command(entry)

    def _hop_stamp(self, pdu) -> None:
        """Append this hop's traversal mark as the PDU leaves the box
        (after any service transform, so a re-stamped payload MAC
        covers what actually goes on the wire)."""
        layer = self.integrity
        if layer is not None:
            service = self.middlebox.service
            layer.hop_process(
                pdu,
                self.middlebox.name,
                transformed=service is not None and service.transforms_payload,
            )

    def _adversary_egress(self, pdu, direction, socket, streamed: bool):
        """A compromised middle-box's last word on an outgoing PDU:
        returns the (possibly tampered copy of the) PDU to send, or
        None when the adversary holds it for later re-injection
        (whole-PDU path only — streamed bytes are already committed)."""
        adversary = self.adversary
        if adversary is None:
            return pdu
        return adversary.on_egress(pdu, direction, socket, streamed)

    @staticmethod
    def _transform_only(pdu, direction, service):
        if service is None:
            return pdu
        if direction == "upstream":
            return service.transform_upstream(pdu)
        return service.transform_downstream(pdu)

    @staticmethod
    def _reject_streamed_reply(_pdu) -> None:
        raise RuntimeError(
            "reply() is not available for streamed (multi-segment) PDUs: "
            "their leading chunks were already forwarded cut-through"
        )

    def _sentinel_watcher(self, src: TcpSocket, queue):
        while True:
            got = yield src.recv()
            if got is RESET or got is EOF:
                queue.put(("ctrl", got))
                return
            # a full message delivered before the chunk listener existed
            queue.put(("msg", got))

    def _make_context(self, entry: NvmEntry, pair: RelayPair, direction: str) -> RelayContext:
        def forward(out_pdu) -> None:
            ctx.consumed = True
            self._hop_stamp(out_pdu)
            dst = self._dst_socket(pair, direction)
            out = self._adversary_egress(out_pdu, direction, dst, streamed=False)
            if out is None:
                # held by the adversary; the journal keeps the stamped
                # PDU, and re-injection goes straight onto the socket
                entry.pdu = out_pdu
                return
            entry.pdu = out
            self._send_tracked_safe(dst, out, entry)

        def reply(out_pdu) -> None:
            ctx.consumed = True
            self._send_tracked_safe(self._src_socket(pair, direction), out_pdu, entry)

        ctx = RelayContext(direction=direction, forward=forward, reply=reply)
        return ctx

    def _send_tracked_safe(self, socket: TcpSocket, out_pdu, entry: NvmEntry) -> None:
        """Send with NVM tracking; a dead socket leaves the entry
        journaled for the recovery replay."""
        try:
            message_id = socket.send(out_pdu, out_pdu.wire_size)
        except ConnectionReset:
            return
        self.sim.process(self._discard_when_delivered(socket, message_id, entry.entry_id))

    def _discard_when_delivered(self, socket: TcpSocket, message_id: int, entry_id: int):
        yield socket.when_delivered(message_id)
        entry = self.nvm.get(entry_id)
        if entry is None:
            return
        if entry.direction == "upstream" and isinstance(entry.pdu, ScsiCommandPdu):
            return  # retired by the downstream response, not the TCP ACK
        self.nvm.pop(entry_id, None)
        if self.obs is not None:
            self.obs.event(
                "nvm.retire",
                target=self.middlebox.name,
                ctx=getattr(entry.pdu, "ctx", None),
                journal=len(self.nvm),
            )

    def _replay_stale(self, pair: RelayPair, login_entry_id: int, flow) -> None:
        """Middle-box crash recovery: the journal is NVM, so entries
        written before a crash survive the restart.  When the VM-side
        session logs back in on the same 4-tuple, replay that flow's
        un-ACKed upstream PDUs on the fresh pair (in arrival order,
        right behind the just-forwarded login) and drop its stale
        downstream/login entries — the re-executed commands regenerate
        the responses, and duplicates are absorbed by idempotent
        writes plus the initiator's task-tag table."""
        replayed = 0
        for entry in list(self.nvm.values()):
            if entry.entry_id >= login_entry_id or entry.flow != flow:
                continue
            if (
                entry.direction != "upstream"
                or entry.pdu is None
                or isinstance(entry.pdu, LoginRequestPdu)
            ):
                self.nvm.pop(entry.entry_id, None)
                continue
            self.pdus_replayed += 1
            replayed += 1
            self._send_tracked_safe(pair.client, entry.pdu, entry)
        if replayed:
            self._log("relay.replay-stale", replayed=replayed)
            if self.obs is not None:
                self.obs.event("nvm.replay", target=self.middlebox.name,
                               count=replayed, reason="restart")

    # -- downstream failure recovery --------------------------------------

    def _recover(self, pair: RelayPair):
        """Reconnect the pseudo-client and replay unacknowledged PDUs.

        The gateways' conntrack entries key on the 4-tuple, which the
        fresh connection reuses, so no control-plane action is needed.
        """
        while pair.reconnects < self.max_reconnects:
            pair.reconnects += 1
            yield self.sim.timeout(self.reconnect_delay)
            self._log("relay.reconnect-attempt", attempt=pair.reconnects)
            client = self._new_client_socket(pair.server)
            try:
                established = client.connect(self.egress_ip, self.egress_port)
                result = yield self.sim.any_of(
                    [established, self.sim.timeout(1.0, "timeout")]
                )
            except ConnectionReset:
                continue
            if established not in result or client.state != "established":
                client.reset()
                continue
            pair.client = client
            self._start_downstream_pump(pair)
            # re-establish the iSCSI session, then replay journaled
            # upstream PDUs in arrival order (the duplicate login
            # response is ignored by the initiator)
            if pair.login_pdu is not None:
                try:
                    client.send(pair.login_pdu, pair.login_pdu.wire_size)
                except ConnectionReset:
                    continue
            # the journal dict is keyed by a monotone entry_id and only
            # ever appended to / popped from, so insertion order IS
            # arrival order — no need to sort on every reconnect
            replayed = 0
            for entry in list(self.nvm.values()):
                if entry.direction == "upstream" and entry.pdu is not None:
                    self.pdus_replayed += 1
                    replayed += 1
                    self._send_tracked_safe(client, entry.pdu, entry)
            self._log("relay.recovered", replayed=replayed)
            if self.obs is not None:
                self.obs.event("nvm.replay", target=self.middlebox.name,
                               count=replayed, reason="reconnect")
            return
        # recovery exhausted: tear the flow down toward the VM
        self._log("relay.gave-up", reconnects=pair.reconnects)
        if pair.server.state == "established":
            pair.abandoned = True
            pair.server.reset()

    def shutdown(self) -> None:
        self.middlebox.stack.nat.remove_by_cookie(self.cookie)
        self.listener.shutdown()
