"""The StorM platform orchestrator (paper §III-D, §IV).

Ties everything together: parses tenant policies, provisions gateway
pairs and middle-box VMs, wires relays, and performs the *atomic
volume attach*:

1. take the platform-wide attach mutex;
2. install the transient NAT rules (host → ingress → egress) and the
   wildcard steering chain;
3. attach the volume — the host initiator's connection is pulled
   through the gateways and middle-boxes, and conntrack pins every
   translation;
4. attribute the new connection (login hook → IQN → VM) and narrow the
   steering rules to the now-known source port;
5. remove the transient NAT rules and release the mutex.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cloud.compute import ComputeHost
from repro.cloud.controller import CloudController
from repro.cloud.tenant import Tenant
from repro.cloud.vm import VirtualMachine
from repro.core.attribution import AttributionRecord, ConnectionAttributor
from repro.core.middlebox import MiddleBox, NoopService, StorageService
from repro.core.policy import PolicyError, ServiceSpec, TenantPolicy
from repro.core.relay import ActiveRelay, PassiveRelay, RelayMode
from repro.core.splicing import (
    GatewayPair,
    create_gateway_pair,
    install_attach_nat,
    remove_attach_nat,
)
from repro.core.steering import SteeringChain
from repro.sim import Resource, Simulator


@dataclass
class StorMFlow:
    """One spliced storage connection with its service chain."""

    tenant_name: str
    vm_name: str
    volume_name: str
    src_port: int
    middleboxes: list[MiddleBox]
    chain: SteeringChain
    gateways: GatewayPair
    cookie: str
    session: object = None
    attribution: Optional[AttributionRecord] = None


class StorM:
    """The provider-side platform."""

    def __init__(self, sim: Simulator, cloud: CloudController):
        self.sim = sim
        self.cloud = cloud
        self.attributor = ConnectionAttributor()
        self._attach_mutex = Resource(sim, capacity=1)
        self.gateway_pairs: dict[str, GatewayPair] = {}
        self.middleboxes: dict[str, MiddleBox] = {}
        self.flows: list[StorMFlow] = []
        self._mb_ids = itertools.count(1)
        self._placement_cycle = None
        self.service_factories: dict[str, Callable[[ServiceSpec, "StorM"], StorageService]] = {
            "noop": lambda spec, storm: NoopService(),
        }

    # -- registration ------------------------------------------------------

    def register_service(
        self, kind: str, factory: Callable[[ServiceSpec, "StorM"], StorageService]
    ) -> None:
        self.service_factories[kind] = factory

    # -- gateways -----------------------------------------------------------

    def ensure_gateways(
        self,
        tenant: Tenant,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ) -> GatewayPair:
        """Per-tenant gateway pair, created on first use.

        Placement is a latency knob (paper §V-A): co-locating the
        ingress with the VM's host and the egress near the storage node
        trims the routing overhead; spreading them is the worst case.
        """
        pair = self.gateway_pairs.get(tenant.name)
        if pair is not None:
            return pair
        hosts = list(self.cloud.compute_hosts.values())
        if not hosts:
            raise PolicyError("no compute hosts available for gateways")
        ingress_host = ingress_host or hosts[0]
        egress_host = egress_host or hosts[-1]
        pair = create_gateway_pair(self.cloud, tenant, ingress_host, egress_host)
        self.gateway_pairs[tenant.name] = pair
        return pair

    # -- middle-box provisioning -----------------------------------------------

    def _next_host(self) -> ComputeHost:
        if self._placement_cycle is None:
            self._placement_cycle = itertools.cycle(self.cloud.compute_hosts.values())
        return next(self._placement_cycle)

    def provision_middlebox(self, tenant: Tenant, spec: ServiceSpec) -> MiddleBox:
        """Create the middle-box VM from a spec and install its service."""
        spec.validate()
        if spec.kind not in self.service_factories:
            raise PolicyError(
                f"unknown service kind {spec.kind!r}; registered: "
                f"{sorted(self.service_factories)}"
            )
        host = (
            self.cloud.compute_hosts[spec.placement]
            if spec.placement
            else self._next_host()
        )
        name = f"mb-{tenant.name}-{spec.name}-{next(self._mb_ids)}"
        mb = MiddleBox(self.sim, name, tenant, vcpus=spec.vcpus, memory_mb=spec.memory_mb)
        mb.host_name = host.name
        self.cloud.plug_instance_iface(mb, host, tenant)
        # the only in-guest configuration the paper requires:
        mb.stack.ip_forward = True
        mb.stack.forward_delay = self.cloud.params.middlebox_forward_delay
        mb.relay_mode = RelayMode(spec.relay)
        mb.install_service(self.service_factories[spec.kind](spec, self))
        if mb.relay_mode is RelayMode.PASSIVE:
            mb.relay = PassiveRelay(self.sim, mb, self.cloud.params)
        host.committed_vcpus += mb.vcpus
        host.committed_memory_mb += mb.memory_mb
        self.middleboxes[name] = mb
        return mb

    def deprovision_middlebox(self, mb: MiddleBox) -> None:
        """Tear a middle-box VM down and return its resources.

        The box must not be part of any live flow's chain — detach or
        reconfigure the flow first.  Crashed boxes can (and should) be
        deprovisioned: their NIC is already dark, but the OVS port,
        ARP entries, and committed capacity still need reclaiming.
        """
        for flow in self.flows:
            if mb in flow.middleboxes:
                raise PolicyError(
                    f"middle-box {mb.name} is still in the chain of "
                    f"{flow.vm_name}:{flow.volume_name}; detach first"
                )
        if self.middleboxes.pop(mb.name, None) is None:
            return  # already deprovisioned
        if mb.relay is not None and hasattr(mb.relay, "shutdown"):
            mb.relay.shutdown()
        mb.relay = None
        mb.stack.forward_hook = None
        host = self.cloud.compute_hosts.get(mb.host_name)
        if host is not None:
            self.cloud.unplug_instance_iface(mb, host)
            host.committed_vcpus -= mb.vcpus
            host.committed_memory_mb -= mb.memory_mb

    def _configure_active_relay(
        self, mb: MiddleBox, gateways: GatewayPair, port: int
    ) -> None:
        if mb.relay is not None:
            if getattr(mb.relay, "egress_port", port) != port:
                raise PolicyError(
                    f"middle-box {mb.name} already relays port "
                    f"{mb.relay.egress_port}; one service port per box"
                )
            return
        mb.relay = ActiveRelay(
            self.sim,
            mb,
            egress_ip=gateways.egress.instance_ip,
            params=self.cloud.params,
            egress_port=port,
            cookie=f"redirect:{mb.name}",
        )

    # -- the atomic attach -------------------------------------------------------

    def attach_with_services(
        self,
        tenant: Tenant,
        vm: VirtualMachine,
        volume_name: str,
        middleboxes: list[MiddleBox],
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: splice + steer + attach one volume through a chain."""
        volume, storage_host = self.cloud.volume_location(volume_name)
        target_ip = storage_host.storage_iface.ip
        gateways = self.ensure_gateways(tenant, ingress_host, egress_host)
        self.attributor.watch_host(vm.host)
        from repro.iscsi.pdu import ISCSI_PORT

        for mb in middleboxes:
            if mb.relay_mode is RelayMode.ACTIVE:
                self._configure_active_relay(mb, gateways, ISCSI_PORT)
        cookie = f"storm:{vm.name}:{volume_name}"
        chain = SteeringChain(self.cloud.sdn, gateways, list(middleboxes), cookie)

        grant = self._attach_mutex.request()
        yield grant
        try:
            install_attach_nat(vm.host, gateways, target_ip, cookie)
            chain.install(src_port=None)  # wildcard — safe under the mutex
            session = yield self.sim.process(
                vm.host.attach_volume(vm, volume_name, volume.iqn, target_ip)
            )
            attribution = self.attributor.attribute(
                vm.host.storage_iface.ip, session.local_port
            )
            chain.narrow(session.local_port)
        finally:
            remove_attach_nat(vm.host, gateways, cookie)
            self._attach_mutex.release(grant)

        flow = StorMFlow(
            tenant_name=tenant.name,
            vm_name=vm.name,
            volume_name=volume_name,
            src_port=session.local_port,
            middleboxes=list(middleboxes),
            chain=chain,
            gateways=gateways,
            cookie=cookie,
            session=session,
            attribution=attribution,
        )
        self.flows.append(flow)
        for mb in middleboxes:
            if mb.service is not None:
                mb.service.on_volume_attached(volume, flow)
        return flow

    # -- object-storage flows (§II-A: "equally applicable") --------------------

    def attach_object_session(
        self,
        tenant: Tenant,
        vm: VirtualMachine,
        server_ip: str,
        middleboxes: list[MiddleBox],
        port: Optional[int] = None,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: splice an *object-store* connection through a chain.

        Identical protocol to the volume attach — transient NAT rules,
        wildcard steering under the mutex, then narrowing — just on the
        object port, demonstrating the paper's claim that the design
        carries beyond block storage.
        """
        from repro.objstore import OBJECT_PORT, ObjectStoreClient

        port = port or OBJECT_PORT
        host = vm.host
        if not hasattr(host, "object_client"):
            host.object_client = ObjectStoreClient(
                self.sim,
                host.stack,
                host.storage_iface.ip,
                mss=self.cloud.params.mss,
                window=self.cloud.params.tcp_window,
            )
        gateways = self.ensure_gateways(tenant, ingress_host, egress_host)
        for mb in middleboxes:
            if mb.relay_mode is RelayMode.ACTIVE:
                self._configure_active_relay(mb, gateways, port)
        cookie = f"storm-obj:{vm.name}:{server_ip}:{port}"
        chain = SteeringChain(
            self.cloud.sdn, gateways, list(middleboxes), cookie, service_port=port
        )

        grant = self._attach_mutex.request()
        yield grant
        try:
            install_attach_nat(host, gateways, server_ip, cookie, port=port)
            chain.install(src_port=None)
            session = yield self.sim.process(
                host.object_client.connect(server_ip, port)
            )
            chain.narrow(session.local_port)
        finally:
            remove_attach_nat(host, gateways, cookie)
            self._attach_mutex.release(grant)

        flow = StorMFlow(
            tenant_name=tenant.name,
            vm_name=vm.name,
            volume_name=f"objstore://{server_ip}:{port}",
            src_port=session.local_port,
            middleboxes=list(middleboxes),
            chain=chain,
            gateways=gateways,
            cookie=cookie,
            session=session,
        )
        self.flows.append(flow)
        return flow

    # -- policy-driven deployment ---------------------------------------------

    def deploy_policy(
        self,
        policy: TenantPolicy,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: provision everything a tenant policy asks for."""
        policy.validate()
        tenant = self.cloud.tenants.get(policy.tenant)
        if tenant is None:
            raise PolicyError(f"unknown tenant {policy.tenant!r}")
        provisioned: dict[str, MiddleBox] = {}
        for spec in policy.services:
            provisioned[spec.name] = self.provision_middlebox(tenant, spec)
        flows = []
        for chain_policy in policy.chains:
            vm = self._find_vm(chain_policy.vm)
            chain_mbs = [provisioned[name] for name in chain_policy.chain]
            flow = yield self.sim.process(
                self.attach_with_services(
                    tenant,
                    vm,
                    chain_policy.volume,
                    chain_mbs,
                    ingress_host=ingress_host,
                    egress_host=egress_host,
                )
            )
            flows.append(flow)
        return flows

    def _find_vm(self, vm_name: str) -> VirtualMachine:
        for host in self.cloud.compute_hosts.values():
            if vm_name in host.vms:
                return host.vms[vm_name]
        raise PolicyError(f"unknown VM {vm_name!r}")

    # -- on-demand scaling (fwd-mode chains) --------------------------------------

    def reconfigure_chain(self, flow: StorMFlow, middleboxes: list[MiddleBox]) -> None:
        """Add/remove middle-boxes on an existing flow by reprogramming
        the SDN switches (paper §III-A).  Restricted to forwarding-mode
        chains: active relays hold per-flow TCP state."""
        for mb in list(flow.middleboxes) + list(middleboxes):
            if mb.relay_mode is RelayMode.ACTIVE:
                raise PolicyError(
                    "cannot reconfigure a chain containing active-relay "
                    "middle-boxes on a live flow"
                )
        flow.chain.reconfigure(list(middleboxes))
        flow.middleboxes = list(middleboxes)

    def detach(self, flow: StorMFlow) -> None:
        """Tear down a flow: close the session and remove its rules."""
        if flow.session is not None and flow.session.alive:
            flow.session.close()
        flow.chain.remove()
        if flow in self.flows:
            self.flows.remove(flow)
