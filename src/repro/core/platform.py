"""The StorM platform orchestrator (paper §III-D, §IV).

Ties everything together: parses tenant policies, provisions gateway
pairs and middle-box VMs, wires relays, and performs the *atomic
volume attach*:

1. take the platform-wide attach mutex;
2. install the transient NAT rules (host → ingress → egress) and the
   wildcard steering chain;
3. attach the volume — the host initiator's connection is pulled
   through the gateways and middle-boxes, and conntrack pins every
   translation;
4. attribute the new connection (login hook → IQN → VM) and narrow the
   steering rules to the now-known source port;
5. remove the transient NAT rules and release the mutex.

Every multi-step control operation runs as a :class:`~repro.core.saga.Saga`
of idempotent steps with compensating rollbacks.  With
``transactional=True`` the platform also journals each saga in a
write-ahead :class:`~repro.core.saga.IntentLog` on a crashable
:class:`~repro.core.saga.ControlPlaneNode`, so a controller crash
mid-operation (``FaultInjector.crash``) is recovered on restart by
:meth:`StorM.recover` — replay past the pivot step, rollback before it
— never leaving a half-spliced flow, a leaked wildcard rule, or an
orphaned NAT entry.  The knob defaults off: injector-off runs are
bit-identical to the non-transactional platform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import GeneratorType
from typing import Callable, Optional

from repro.analysis.events import EventLog
from repro.cloud.compute import ComputeHost
from repro.cloud.controller import CloudController
from repro.cloud.tenant import Tenant
from repro.cloud.vm import VirtualMachine
from repro.core.attribution import AttributionRecord, ConnectionAttributor
from repro.core.middlebox import MiddleBox, NoopService, StorageService
from repro.core.policy import PolicyError, ServiceSpec, TenantPolicy
from repro.core.relay import ActiveRelay, PassiveRelay, RelayMode
from repro.core.saga import (
    ABORTED,
    COMMITTED,
    IN_FLIGHT,
    ControllerCrashed,
    ControlPlaneNode,
    IntentLog,
    Saga,
    SagaError,
    SagaStep,
)
from repro.core.splicing import (
    GatewayPair,
    create_gateway_pair,
    forget_attach_conntrack,
    install_attach_nat,
    release_gateway_pair,
    remove_attach_nat,
)
from repro.core.steering import SteeringChain
from repro.sim import Resource, Simulator


@dataclass(eq=False)
class StorMFlow:
    """One spliced storage connection with its service chain.

    ``eq=False``: flows are identity objects — membership tests in the
    platform's flow list must not walk every field (and chain) of every
    live flow."""

    tenant_name: str
    vm_name: str
    volume_name: str
    src_port: int
    middleboxes: list[MiddleBox]
    chain: SteeringChain
    gateways: GatewayPair
    cookie: str
    session: object = None
    attribution: Optional[AttributionRecord] = None
    detached: bool = False
    #: the compute host the session originates from and the true
    #: storage-side address — retained so the detach saga's eviction
    #: step can forget the exact conntrack tuples the attach pinned.
    host: object = None
    target_ip: str = ""


class StorM:
    """The provider-side platform."""

    def __init__(
        self,
        sim: Simulator,
        cloud: CloudController,
        transactional: bool = False,
        event_log: Optional[EventLog] = None,
        ha: bool = False,
        ha_config=None,
    ):
        self.sim = sim
        self.cloud = cloud
        self.attributor = ConnectionAttributor()
        self._attach_mutex = Resource(sim, capacity=1)
        self.gateway_pairs: dict[str, GatewayPair] = {}
        self.middleboxes: dict[str, MiddleBox] = {}
        self.flows: list[StorMFlow] = []
        #: live-flow counts per tenant and per middle-box, maintained
        #: alongside ``flows`` so fleet-scale paths (detach eviction,
        #: deprovision guards) stay O(1) instead of scanning the flow
        #: list — pure bookkeeping, no simulation events.
        self._tenant_flows: dict[str, int] = {}
        self._mb_refs: dict[str, int] = {}
        #: attaches in flight (saga begun, flow not yet registered) per
        #: tenant — the detach-side eviction must not tear down a
        #: tenant's gateways while a concurrent attach is mid-saga.
        self._tenant_pending: dict[str, int] = {}
        #: state-eviction knob (``CloudParams.evict_detached``): when
        #: on, the detach saga tears down the flow's pinned conntrack
        #: and idle tenants' gateways/metric scopes.
        self.evict_detached = cloud.params.evict_detached
        #: post-commit hook called as ``on_saga_commit(saga)``; the
        #: fleet generator uses it to read per-saga shipping RTT for
        #: attach-latency attribution.  None = zero overhead.
        self.on_saga_commit: Optional[Callable[[Saga], None]] = None
        self._mb_ids = itertools.count(1)
        self._placement_cycle = None
        self.service_factories: dict[str, Callable[[ServiceSpec, "StorM"], StorageService]] = {
            "noop": lambda spec, storm: NoopService(),
        }
        #: recovery/repair timeline (shared with the fault injector in
        #: chaos runs); None keeps the fast path allocation-free.
        self.event_log = event_log
        #: observability bus (set by ``repro.obs.instrument``): when
        #: non-None every saga runs under a span with step events, and
        #: gateways/relays/services created later inherit the bus.
        self.obs = None
        self.transactional = transactional
        self.controller: Optional[ControlPlaneNode] = None
        self.intent_log: Optional[IntentLog] = None
        #: test/chaos hook: called as ``probe(saga, step, "before"|"after")``
        #: around every step — the control-plane chaos matrix uses it to
        #: crash the controller at exact saga points.
        self.saga_probe: Optional[Callable[[Saga, SagaStep, str], None]] = None
        #: replicated control plane (:mod:`repro.core.ha`); None keeps
        #: the single-node (or non-transactional) platform bit-identical.
        self.ha = None
        if ha or ha_config is not None:
            from repro.core.ha import HaCluster, HaConfig

            self.transactional = True
            self.intent_log = IntentLog()
            self.ha = HaCluster(
                self,
                ha_config if ha_config is not None else HaConfig(),
            )
            self.intent_log.shipper = self.ha
            self.controller = self.ha.leader_node
        elif transactional:
            self.controller = ControlPlaneNode(sim)
            self.controller.on_restart = self.recover
            self.intent_log = IntentLog()

    # -- end-to-end integrity ----------------------------------------------

    @property
    def integrity(self):
        """The cloud's :class:`repro.integrity.IntegrityLayer` (None
        when ``params.integrity`` is off)."""
        return getattr(self.cloud, "integrity", None)

    @staticmethod
    def _integrity_hops(middleboxes: list[MiddleBox]) -> list[str]:
        """Relay hops that stamp traversal marks, in upstream order.
        FWD-mode boxes forward at IP level without touching PDUs, so
        they cannot mark — the proof covers the intercepting hops."""
        return [
            mb.name
            for mb in middleboxes
            if mb.relay_mode in (RelayMode.PASSIVE, RelayMode.ACTIVE)
        ]

    def _flow_iqn(self, flow: StorMFlow) -> Optional[str]:
        if flow.volume_name.startswith("objstore://"):
            return None  # object flows carry no iSCSI stamps
        try:
            volume, _host = self.cloud.volume_location(flow.volume_name)
        except KeyError:
            return None  # volume already deleted (late detach)
        return volume.iqn

    def _register_flow_chain(self, flow: StorMFlow) -> None:
        """Authorized registration of the chain the endpoints expect.
        Called from attach/reconfigure sagas — the one path a tenant's
        traversal expectations may legitimately change through."""
        layer = self.integrity
        if layer is None:
            return
        iqn = self._flow_iqn(flow)
        if iqn is not None:
            layer.register_chain(iqn, self._integrity_hops(flow.middleboxes))

    def _unregister_flow_chain(self, flow: StorMFlow) -> None:
        layer = self.integrity
        if layer is None:
            return
        iqn = self._flow_iqn(flow)
        if iqn is not None:
            layer.unregister_chain(iqn)

    # -- registration ------------------------------------------------------

    def register_service(
        self, kind: str, factory: Callable[[ServiceSpec, "StorM"], StorageService]
    ) -> None:
        self.service_factories[kind] = factory

    # -- gateways -----------------------------------------------------------

    def ensure_gateways(
        self,
        tenant: Tenant,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ) -> GatewayPair:
        """Per-tenant gateway pair, created on first use.

        Placement is a latency knob (paper §V-A): co-locating the
        ingress with the VM's host and the egress near the storage node
        trims the routing overhead; spreading them is the worst case.
        """
        pair = self.gateway_pairs.get(tenant.name)
        if pair is not None:
            return pair
        hosts = list(self.cloud.compute_hosts.values())
        if not hosts:
            raise PolicyError("no compute hosts available for gateways")
        ingress_host = ingress_host or hosts[0]
        egress_host = egress_host or hosts[-1]
        pair = create_gateway_pair(self.cloud, tenant, ingress_host, egress_host)
        self.gateway_pairs[tenant.name] = pair
        if self.obs is not None:
            from repro.obs.instrument import wire_node

            wire_node(self.obs, pair.ingress)
            wire_node(self.obs, pair.egress)
        return pair

    def release_gateways(self, tenant_name: str) -> bool:
        """Tear down a tenant's gateway pair (last flow detached).

        Idempotent; returns True when a pair was actually released.
        The next attach for the tenant re-creates a fresh pair through
        :meth:`ensure_gateways` — addresses are never reused, so the
        create/release cycle stays deterministic.
        """
        pair = self.gateway_pairs.pop(tenant_name, None)
        if pair is None:
            return False
        release_gateway_pair(self.cloud, pair)
        return True

    # -- flow bookkeeping ---------------------------------------------------

    def tenant_flow_count(self, tenant_name: str) -> int:
        """Live (registered, not-yet-detached) flows of one tenant."""
        return self._tenant_flows.get(tenant_name, 0)

    def _track_flow(self, flow: StorMFlow) -> None:
        self._tenant_flows[flow.tenant_name] = (
            self._tenant_flows.get(flow.tenant_name, 0) + 1
        )
        for mb in flow.middleboxes:
            self._mb_refs[mb.name] = self._mb_refs.get(mb.name, 0) + 1

    def _untrack_flow(self, flow: StorMFlow) -> None:
        remaining = self._tenant_flows.get(flow.tenant_name, 0) - 1
        if remaining > 0:
            self._tenant_flows[flow.tenant_name] = remaining
        else:
            self._tenant_flows.pop(flow.tenant_name, None)
        for mb in flow.middleboxes:
            refs = self._mb_refs.get(mb.name, 0) - 1
            if refs > 0:
                self._mb_refs[mb.name] = refs
            else:
                self._mb_refs.pop(mb.name, None)

    # -- the saga executor -------------------------------------------------

    def _record(self, kind: str, target: str, **detail) -> None:
        if self.event_log is not None:
            self.event_log.record(self.sim.now, kind, target, **detail)

    def _begin_saga(
        self,
        op: str,
        cookie: str,
        steps: list[SagaStep],
        state: Optional[dict] = None,
        **detail,
    ) -> Saga:
        if self.intent_log is not None:
            saga = self.intent_log.begin(op, cookie, steps, detail)
            self._record("saga.begin", cookie, op=op)
        else:
            # non-transactional: an ephemeral saga gives the same ordered
            # execution and failure compensation, just without the journal
            # (and hence without crash recovery).
            saga = Saga(0, op, cookie, steps, detail)
        if state is not None:
            # the step closures were built over this dict; ``store``d
            # results must land where they read.
            saga.state = state
        return saga

    def _check_controller(self, saga: Saga, step_name: str = "") -> None:
        if self.ha is not None:
            # HA: an executor may only proceed while the leadership
            # that began (or adopted) its saga still stands — a leader
            # crash, step-down, or election revokes it mid-operation.
            if not self.ha.has_authority(saga):
                raise ControllerCrashed(saga.op, step_name)
            return
        if self.controller is not None and self.controller.crashed:
            raise ControllerCrashed(saga.op, step_name)

    def _probe(self, saga: Saga, step: SagaStep, when: str) -> None:
        if self.saga_probe is not None:
            self.saga_probe(saga, step, when)
        self._check_controller(saga, step.name)

    def _finish_step(self, saga: Saga, step: SagaStep, result) -> None:
        saga.results[step.name] = result
        if step.store is not None:
            saga.state[step.store] = result
        if saga.status == ABORTED:
            # a concurrent recovery (controller restarted while this
            # step's child process was still in flight) already rolled
            # the saga back — compensate this straggler result too.
            if step.undo is not None:
                step.undo()
            raise ControllerCrashed(saga.op, step.name)
        saga.mark(f"done:{step.name}")
        if step.pivot:
            saga.pivoted = True
            saga.mark("pivot")

    def _execute_saga(self, saga: Saga):
        """Process: run a saga that may contain yielding steps.

        Holds the attach mutex across the ``locked`` step prefix.  On
        an ordinary exception the started steps are compensated
        immediately; on :class:`ControllerCrashed` the saga is left
        in-flight in the intent log for :meth:`recover`.
        """
        grant = None
        span = self._saga_span(saga)
        if any(step.locked for step in saga.steps):
            grant = self._attach_mutex.request()
            yield grant
        try:
            for step in saga.steps:
                if grant is not None and not step.locked:
                    self._attach_mutex.release(grant)
                    grant = None
                self._probe(saga, step, "before")
                saga.mark(f"start:{step.name}")
                result = step.do()
                if isinstance(result, GeneratorType):
                    result = yield self.sim.process(result)
                self._finish_step(saga, step, result)
                if span is not None:
                    span.event("saga.step", target=step.name)
                self._probe(saga, step, "after")
            self._commit_saga(saga)
            if span is not None:
                span.finish("committed")
            return saga.results.get(saga.steps[-1].name) if saga.steps else None
        except ControllerCrashed:
            if span is not None:
                span.finish("crashed")
            raise
        except BaseException:
            self._rollback_saga(saga)
            if span is not None:
                span.finish("aborted")
            raise
        finally:
            if grant is not None:
                self._attach_mutex.release(grant)

    def _saga_span(self, saga: Saga):
        """Control-plane op as a span (None when uninstrumented)."""
        if self.obs is None:
            return None
        return self.obs.span(f"saga.{saga.op}", cookie=saga.cookie)

    def _execute_saga_sync(self, saga: Saga):
        """Synchronous executor for sagas whose steps never yield
        (detach, reconfigure, provisioning)."""
        span = self._saga_span(saga)
        try:
            for step in saga.steps:
                self._probe(saga, step, "before")
                saga.mark(f"start:{step.name}")
                result = step.do()
                if isinstance(result, GeneratorType):
                    raise SagaError(
                        f"step {step.name!r} of {saga.op!r} yields; use the process executor"
                    )
                self._finish_step(saga, step, result)
                if span is not None:
                    span.event("saga.step", target=step.name)
                self._probe(saga, step, "after")
            self._commit_saga(saga)
            if span is not None:
                span.finish("committed")
            return saga.results.get(saga.steps[-1].name) if saga.steps else None
        except ControllerCrashed:
            if span is not None:
                span.finish("crashed")
            raise
        except BaseException:
            self._rollback_saga(saga)
            if span is not None:
                span.finish("aborted")
            raise

    def _commit_saga(self, saga: Saga) -> None:
        saga.status = COMMITTED
        saga.mark("commit")
        if self.intent_log is not None:
            self._record("saga.commit", saga.cookie, op=saga.op)
        if self.on_saga_commit is not None:
            self.on_saga_commit(saga)

    def _rollback_saga(self, saga: Saga) -> None:
        """Run compensations, newest started step first.  Undo closures
        are idempotent and tolerate partially-applied steps."""
        if saga.status != IN_FLIGHT:
            return
        for step in reversed(saga.steps):
            if not saga.started(step.name) or step.undo is None:
                continue
            step.undo()
            self._record("saga.undo", saga.cookie, op=saga.op, step=step.name)
        saga.status = ABORTED
        saga.mark("abort")
        if self.intent_log is not None:
            self._record("saga.rollback", saga.cookie, op=saga.op)

    def _replay_saga(self, saga: Saga) -> None:
        """Roll a pivoted saga forward: re-run every step not yet
        journaled as done.  Post-pivot steps are synchronous and
        idempotent by construction."""
        for step in saga.steps:
            if saga.done(step.name):
                continue
            saga.mark(f"start:{step.name}")
            result = step.do()
            if isinstance(result, GeneratorType):
                raise SagaError(
                    f"cannot replay yielding step {step.name!r} of {saga.op!r}"
                )
            self._finish_step(saga, step, result)
        self._commit_saga(saga)

    def recover(self) -> dict[str, int]:
        """Crash recovery: resolve every in-flight saga in the intent
        log — replay it forward if its pivot step was journaled,
        compensate it otherwise.  Called by the fault injector's
        restart of the controller node; safe to call repeatedly."""
        summary = {"replayed": 0, "rolled_back": 0}
        if self.intent_log is None:
            return summary
        for saga in self.intent_log.incomplete():
            if saga.pivoted:
                self._replay_saga(saga)
                summary["replayed"] += 1
                self._record("saga.replay", saga.cookie, op=saga.op)
            else:
                self._rollback_saga(saga)
                summary["rolled_back"] += 1
        return summary

    # -- middle-box provisioning -----------------------------------------------

    def _next_host(self) -> ComputeHost:
        if self._placement_cycle is None:
            self._placement_cycle = itertools.cycle(self.cloud.compute_hosts.values())
        return next(self._placement_cycle)

    def provision_middlebox(self, tenant: Tenant, spec: ServiceSpec) -> MiddleBox:
        """Create the middle-box VM from a spec and install its service."""
        spec.validate()
        if spec.kind not in self.service_factories:
            raise PolicyError(
                f"unknown service kind {spec.kind!r}; registered: "
                f"{sorted(self.service_factories)}"
            )
        state: dict = {}

        def do_provision():
            state["mb"] = self._provision_middlebox_impl(tenant, spec)
            return state["mb"]

        def undo_provision():
            mb = state.get("mb")
            if mb is not None:
                self._deprovision_middlebox_impl(mb)

        saga = self._begin_saga(
            "provision_middlebox",
            f"storm-mb:{tenant.name}:{spec.name}",
            [SagaStep("provision", do=do_provision, undo=undo_provision, locked=False)],
            tenant=tenant.name,
            kind=spec.kind,
        )
        return self._execute_saga_sync(saga)

    def _provision_middlebox_impl(self, tenant: Tenant, spec: ServiceSpec) -> MiddleBox:
        host = (
            self.cloud.compute_hosts[spec.placement]
            if spec.placement
            else self._next_host()
        )
        name = f"mb-{tenant.name}-{spec.name}-{next(self._mb_ids)}"
        mb = MiddleBox(self.sim, name, tenant, vcpus=spec.vcpus, memory_mb=spec.memory_mb)
        mb.host_name = host.name
        self.cloud.plug_instance_iface(mb, host, tenant)
        # the only in-guest configuration the paper requires:
        mb.stack.ip_forward = True
        mb.stack.forward_delay = self.cloud.params.middlebox_forward_delay
        mb.relay_mode = RelayMode(spec.relay)
        mb.install_service(self.service_factories[spec.kind](spec, self))
        if mb.relay_mode is RelayMode.PASSIVE:
            mb.relay = PassiveRelay(self.sim, mb, self.cloud.params)
            mb.relay.integrity = self.integrity
        host.committed_vcpus += mb.vcpus
        host.committed_memory_mb += mb.memory_mb
        self.middleboxes[name] = mb
        if self.obs is not None:
            from repro.obs.instrument import wire_node

            wire_node(self.obs, mb)
            if mb.relay is not None:
                mb.relay.obs = self.obs
            if mb.service is not None:
                mb.service.obs = self.obs
        return mb

    def deprovision_middlebox(self, mb: MiddleBox) -> None:
        """Tear a middle-box VM down and return its resources.

        The box must not be part of any live flow's chain — detach or
        reconfigure the flow first.  Crashed boxes can (and should) be
        deprovisioned: their NIC is already dark, but the OVS port,
        ARP entries, and committed capacity still need reclaiming.
        """
        if self._mb_refs.get(mb.name, 0):
            # O(1) guard; scan only to name a culprit in the error
            for flow in self.flows:
                if mb in flow.middleboxes:
                    raise PolicyError(
                        f"middle-box {mb.name} is still in the chain of "
                        f"{flow.vm_name}:{flow.volume_name}; detach first"
                    )
        saga = self._begin_saga(
            "deprovision_middlebox",
            f"storm-mb:{mb.tenant.name}:{mb.name}",
            [
                SagaStep(
                    "deprovision",
                    do=lambda: self._deprovision_middlebox_impl(mb),
                    pivot=True,
                    locked=False,
                    # teardown is idempotent (_impl no-ops once popped);
                    # a crash mid-step re-drives it, never re-provisions
                    forward_only=True,
                )
            ],
            mb=mb.name,
        )
        self._execute_saga_sync(saga)

    def _deprovision_middlebox_impl(self, mb: MiddleBox) -> None:
        if self.middleboxes.pop(mb.name, None) is None:
            return  # already deprovisioned
        if mb.relay is not None and hasattr(mb.relay, "shutdown"):
            mb.relay.shutdown()
        mb.relay = None
        mb.stack.forward_hook = None
        host = self.cloud.compute_hosts.get(mb.host_name)
        if host is not None:
            self.cloud.unplug_instance_iface(mb, host)
            host.committed_vcpus -= mb.vcpus
            host.committed_memory_mb -= mb.memory_mb

    def _configure_active_relay(
        self, mb: MiddleBox, gateways: GatewayPair, port: int
    ) -> None:
        if mb.relay is not None:
            if getattr(mb.relay, "egress_port", port) != port:
                raise PolicyError(
                    f"middle-box {mb.name} already relays port "
                    f"{mb.relay.egress_port}; one service port per box"
                )
            return
        mb.relay = ActiveRelay(
            self.sim,
            mb,
            egress_ip=gateways.egress.instance_ip,
            params=self.cloud.params,
            egress_port=port,
            cookie=f"redirect:{mb.name}",
        )
        mb.relay.integrity = self.integrity
        if self.obs is not None:
            mb.relay.obs = self.obs

    # -- the atomic attach -------------------------------------------------------

    def _spliced_attach_steps(
        self,
        *,
        host,
        gateways: GatewayPair,
        chain: SteeringChain,
        cookie: str,
        target_ip: str,
        port: int,
        connect: Callable[[], GeneratorType],
        narrow: Callable[[dict], None],
        register: Callable[[dict], StorMFlow],
    ) -> tuple[list[SagaStep], dict]:
        """The paper's atomic attach as a saga of idempotent steps.

        Steps 1–5 hold the attach mutex (the wildcard window); the
        ``narrow`` step is the pivot — once it is journaled, crash
        recovery completes the attach instead of compensating it.
        """
        state: dict = {}

        def do_close_session():
            session = state.get("session")
            if session is not None and session.alive:
                session.close()

        def do_narrow():
            narrow(state)

        def do_register():
            return register(state)

        steps = [
            SagaStep(
                "install-nat",
                do=lambda: install_attach_nat(host, gateways, target_ip, cookie, port=port),
                undo=lambda: remove_attach_nat(host, gateways, cookie),
            ),
            SagaStep(
                "install-chain",
                do=lambda: chain.install(src_port=None),
                undo=chain.remove,
            ),
            SagaStep("connect", do=connect, undo=do_close_session, store="session"),
            SagaStep("narrow", do=do_narrow, undo=chain.remove, pivot=True),
            SagaStep(
                "remove-nat",
                do=lambda: remove_attach_nat(host, gateways, cookie),
            ),
            SagaStep("register-flow", do=do_register, locked=False),
        ]
        return steps, state

    def _attach_spliced_flow(
        self,
        *,
        op: str,
        tenant: Tenant,
        vm: VirtualMachine,
        host,
        middleboxes: list[MiddleBox],
        cookie: str,
        target_ip: str,
        port: int,
        volume_name: str,
        connect: Callable[[], GeneratorType],
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
        attribute: bool = False,
        volume=None,
        detail: Optional[dict] = None,
    ):
        """Process: the steering/rollback core shared by both attach
        paths (block volumes and object sessions).

        Ensures the tenant's gateways, configures active relays on the
        service port, builds the steering chain, and runs the atomic
        attach saga from :meth:`_spliced_attach_steps`.  ``attribute``
        turns on connection attribution (block attach only — object
        flows have no login hook to attribute); ``volume`` (when given)
        is handed to each chained service's ``on_volume_attached``.
        """
        gateways = self.ensure_gateways(tenant, ingress_host, egress_host)
        for mb in middleboxes:
            if mb.relay_mode is RelayMode.ACTIVE:
                self._configure_active_relay(mb, gateways, port)
        chain = SteeringChain(
            self.cloud.sdn, gateways, list(middleboxes), cookie, service_port=port
        )

        def narrow(state):
            session = state["session"]
            if attribute:
                state["attribution"] = self.attributor.attribute(
                    host.storage_iface.ip, session.local_port
                )
            chain.narrow(session.local_port)

        def register(state):
            session = state["session"]
            flow = StorMFlow(
                tenant_name=tenant.name,
                vm_name=vm.name,
                volume_name=volume_name,
                src_port=session.local_port,
                middleboxes=list(middleboxes),
                chain=chain,
                gateways=gateways,
                cookie=cookie,
                session=session,
                attribution=state.get("attribution"),
                host=host,
                target_ip=target_ip,
            )
            self.flows.append(flow)
            self._track_flow(flow)
            self._register_flow_chain(flow)
            if volume is not None:
                for mb in middleboxes:
                    if mb.service is not None:
                        mb.service.on_volume_attached(volume, flow)
            return flow

        steps, state = self._spliced_attach_steps(
            host=host,
            gateways=gateways,
            chain=chain,
            cookie=cookie,
            target_ip=target_ip,
            port=port,
            connect=connect,
            narrow=narrow,
            register=register,
        )
        saga = self._begin_saga(op, cookie, steps, state=state, **(detail or {}))
        pending = self._tenant_pending
        pending[tenant.name] = pending.get(tenant.name, 0) + 1
        try:
            flow = yield from self._execute_saga(saga)
        finally:
            left = pending.get(tenant.name, 0) - 1
            if left > 0:
                pending[tenant.name] = left
            else:
                pending.pop(tenant.name, None)
        return flow

    def attach_with_services(
        self,
        tenant: Tenant,
        vm: VirtualMachine,
        volume_name: str,
        middleboxes: list[MiddleBox],
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: splice + steer + attach one volume through a chain."""
        volume, storage_host = self.cloud.volume_location(volume_name)
        target_ip = storage_host.storage_iface.ip
        self.attributor.watch_host(vm.host)
        from repro.iscsi.pdu import ISCSI_PORT

        def connect():
            return vm.host.attach_volume(vm, volume_name, volume.iqn, target_ip)

        flow = yield from self._attach_spliced_flow(
            op="attach_with_services",
            tenant=tenant,
            vm=vm,
            host=vm.host,
            middleboxes=middleboxes,
            cookie=f"storm:{vm.name}:{volume_name}",
            target_ip=target_ip,
            port=ISCSI_PORT,
            volume_name=volume_name,
            connect=connect,
            ingress_host=ingress_host,
            egress_host=egress_host,
            attribute=True,
            volume=volume,
            detail={"vm": vm.name, "volume": volume_name},
        )
        return flow

    # -- object-storage flows (§II-A: "equally applicable") --------------------

    def attach_object_session(
        self,
        tenant: Tenant,
        vm: VirtualMachine,
        server_ip: str,
        middleboxes: list[MiddleBox],
        port: Optional[int] = None,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: splice an *object-store* connection through a chain.

        Identical protocol to the volume attach — transient NAT rules,
        wildcard steering under the mutex, then narrowing — just on the
        object port, demonstrating the paper's claim that the design
        carries beyond block storage.
        """
        from repro.objstore import OBJECT_PORT, ObjectStoreClient

        port = port or OBJECT_PORT
        host = vm.host
        if not hasattr(host, "object_client"):
            host.object_client = ObjectStoreClient(
                self.sim,
                host.stack,
                host.storage_iface.ip,
                mss=self.cloud.params.mss,
                window=self.cloud.params.tcp_window,
            )

        def connect():
            return host.object_client.connect(server_ip, port)

        flow = yield from self._attach_spliced_flow(
            op="attach_object_session",
            tenant=tenant,
            vm=vm,
            host=host,
            middleboxes=middleboxes,
            cookie=f"storm-obj:{vm.name}:{server_ip}:{port}",
            target_ip=server_ip,
            port=port,
            volume_name=f"objstore://{server_ip}:{port}",
            connect=connect,
            ingress_host=ingress_host,
            egress_host=egress_host,
            detail={"vm": vm.name, "server": server_ip},
        )
        return flow

    # -- policy-driven deployment ---------------------------------------------

    def deploy_policy(
        self,
        policy: TenantPolicy,
        ingress_host: Optional[ComputeHost] = None,
        egress_host: Optional[ComputeHost] = None,
    ):
        """Process: provision everything a tenant policy asks for."""
        policy.validate()
        tenant = self.cloud.tenants.get(policy.tenant)
        if tenant is None:
            raise PolicyError(f"unknown tenant {policy.tenant!r}")
        provisioned: dict[str, MiddleBox] = {}
        for spec in policy.services:
            provisioned[spec.name] = self.provision_middlebox(tenant, spec)
        flows = []
        for chain_policy in policy.chains:
            vm = self._find_vm(chain_policy.vm)
            chain_mbs = [provisioned[name] for name in chain_policy.chain]
            flow = yield self.sim.process(
                self.attach_with_services(
                    tenant,
                    vm,
                    chain_policy.volume,
                    chain_mbs,
                    ingress_host=ingress_host,
                    egress_host=egress_host,
                )
            )
            flows.append(flow)
        return flows

    def _find_vm(self, vm_name: str) -> VirtualMachine:
        for host in self.cloud.compute_hosts.values():
            if vm_name in host.vms:
                return host.vms[vm_name]
        raise PolicyError(f"unknown VM {vm_name!r}")

    # -- on-demand scaling (fwd-mode chains) --------------------------------------

    def reconfigure_chain(self, flow: StorMFlow, middleboxes: list[MiddleBox]) -> None:
        """Add/remove middle-boxes on an existing flow by reprogramming
        the SDN switches (paper §III-A).  Restricted to forwarding-mode
        chains: active relays hold per-flow TCP state.

        The swap is make-before-break: the new rule generation is
        staged (installed at a shadowing priority) before the old one
        is retired, so no step boundary — and hence no controller-crash
        point — leaves the flow without a complete rule set."""
        for mb in list(flow.middleboxes) + list(middleboxes):
            if mb.relay_mode is RelayMode.ACTIVE:
                raise PolicyError(
                    "cannot reconfigure a chain containing active-relay "
                    "middle-boxes on a live flow"
                )
        chain = flow.chain
        old_middleboxes = list(flow.middleboxes)
        state: dict = {}

        def do_stage():
            state["retired"] = chain.stage(middleboxes=list(middleboxes))
            return state["retired"]

        def undo_stage():
            if "retired" in state:
                chain.unstage(state["retired"], old_middleboxes)

        def do_retire():
            chain.retire(state["retired"])

        def do_update():
            self._untrack_flow(flow)
            flow.middleboxes = list(middleboxes)
            self._track_flow(flow)
            self._register_flow_chain(flow)

        saga = self._begin_saga(
            "reconfigure_chain",
            flow.cookie,
            [
                SagaStep("stage-rules", do=do_stage, undo=undo_stage, pivot=True,
                         locked=False, store="retired"),
                SagaStep("retire-old-rules", do=do_retire, locked=False),
                SagaStep("update-flow", do=do_update, locked=False),
            ],
            state=state,
            chain=[mb.name for mb in middleboxes],
        )
        self._execute_saga_sync(saga)

    def detach(self, flow: StorMFlow) -> None:
        """Tear down a flow: close the session, remove its rules, and
        notify its services.  Idempotent — a double detach is a no-op —
        and crash-safe: the first step is the pivot, so a controller
        crash mid-detach always rolls forward to a complete teardown."""
        if flow.detached:
            return

        def do_close():
            if flow.session is not None and flow.session.alive:
                flow.session.close()

        def do_remove_rules():
            flow.chain.remove()

        def do_unregister():
            if flow in self.flows:
                self.flows.remove(flow)
            if not flow.detached:
                flow.detached = True
                self._untrack_flow(flow)
                self._unregister_flow_chain(flow)
                for mb in flow.middleboxes:
                    if mb.service is not None:
                        mb.service.on_volume_detached(flow)

        def do_evict():
            # Per-flow state first: the conntrack entries this attach
            # pinned on the host and both gateways.  Every call here is
            # idempotent, so saga replay after a crash is safe.
            if flow.host is not None:
                forget_attach_conntrack(
                    flow.host,
                    flow.gateways,
                    flow.target_ip,
                    flow.src_port,
                    port=flow.chain.service_port,
                )
                self.attributor.forget(
                    flow.host.storage_iface.ip, flow.src_port
                )
            # Then tenant-wide state, once the last flow is gone and no
            # attach is mid-saga: the per-tenant metrics scope and the
            # gateway pair itself.
            if (
                self.tenant_flow_count(flow.tenant_name) == 0
                and not self._tenant_pending.get(flow.tenant_name)
            ):
                if self.obs is not None:
                    self.obs.release_scope(flow.tenant_name)
                self.release_gateways(flow.tenant_name)

        steps = [
            # the pivot is first on purpose: a mid-detach crash must
            # finish the teardown, never reopen the session
            SagaStep("close-session", do=do_close, pivot=True, locked=False,
                     forward_only=True),
            SagaStep("remove-rules", do=do_remove_rules, locked=False),
            SagaStep("unregister-flow", do=do_unregister, locked=False),
        ]
        if self.evict_detached:
            # past the pivot and pure cleanup: never compensated
            steps.append(
                SagaStep("evict-state", do=do_evict, locked=False,
                         forward_only=True)
            )
        saga = self._begin_saga(
            "detach",
            flow.cookie,
            steps,
            vm=flow.vm_name,
            volume=flow.volume_name,
        )
        self._execute_saga_sync(saga)
