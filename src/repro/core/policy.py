"""Tenant policies (paper §III-D).

A tenant declares, before using middle-boxes: (1) which VMs/volumes
get services, (2) each middle-box's service type and virtual
resources, and (3) how the middle-boxes are chained per volume.
Policies are plain data (constructed directly or parsed from a dict,
e.g. loaded from JSON) and validated before deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class PolicyError(Exception):
    """A tenant policy failed validation."""


@dataclass
class ServiceSpec:
    """One middle-box: service type plus virtual resources."""

    name: str
    kind: str  # "monitor" | "encryption" | "replication" | "noop" | custom
    vcpus: int = 2
    memory_mb: int = 4096
    relay: str = "active"  # "active" | "passive" | "fwd"
    placement: Optional[str] = None  # compute host name, or None = auto
    options: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.name:
            raise PolicyError("service spec needs a name")
        if self.vcpus < 1:
            raise PolicyError(f"service {self.name!r}: vcpus must be >= 1")
        if self.relay not in ("active", "passive", "fwd"):
            raise PolicyError(
                f"service {self.name!r}: relay must be active/passive/fwd, "
                f"got {self.relay!r}"
            )


@dataclass
class ChainPolicy:
    """Which volume of which VM flows through which middle-boxes."""

    vm: str
    volume: str
    chain: list[str]  # ServiceSpec names, in traffic order (VM → storage)

    def validate(self, known_services: set[str]) -> None:
        if not self.vm or not self.volume:
            raise PolicyError("chain policy needs vm and volume names")
        for service_name in self.chain:
            if service_name not in known_services:
                raise PolicyError(
                    f"chain for {self.vm}/{self.volume} references unknown "
                    f"service {service_name!r}"
                )


@dataclass
class TenantPolicy:
    tenant: str
    services: list[ServiceSpec] = field(default_factory=list)
    chains: list[ChainPolicy] = field(default_factory=list)

    def validate(self) -> None:
        if not self.tenant:
            raise PolicyError("policy needs a tenant name")
        names = [s.name for s in self.services]
        if len(names) != len(set(names)):
            raise PolicyError("duplicate service names in policy")
        for spec in self.services:
            spec.validate()
        for chain in self.chains:
            chain.validate(set(names))

    def service(self, name: str) -> ServiceSpec:
        for spec in self.services:
            if spec.name == name:
                return spec
        raise PolicyError(f"no service named {name!r} in policy")


def parse_policy(raw: dict) -> TenantPolicy:
    """Build and validate a :class:`TenantPolicy` from plain data."""
    try:
        services = [
            ServiceSpec(
                name=s["name"],
                kind=s["kind"],
                vcpus=int(s.get("vcpus", 2)),
                memory_mb=int(s.get("memory_mb", 4096)),
                relay=s.get("relay", "active"),
                placement=s.get("placement"),
                options=dict(s.get("options", {})),
            )
            for s in raw.get("services", [])
        ]
        chains = [
            ChainPolicy(vm=c["vm"], volume=c["volume"], chain=list(c["chain"]))
            for c in raw.get("chains", [])
        ]
        policy = TenantPolicy(tenant=raw["tenant"], services=services, chains=chains)
    except (KeyError, TypeError, ValueError) as exc:
        raise PolicyError(f"malformed policy: {exc!r}") from exc
    policy.validate()
    return policy
