"""The transactional control plane: intent log, sagas, and the
controller node.

PR 2 made the *data plane* survive faults; this module does the same
for the *control plane*.  Every multi-step control operation — the
atomic volume attach (paper §III-A), object-session splicing, detach,
chain reconfiguration, middle-box (de)provisioning — is recorded in a
write-ahead **intent log** as a :class:`Saga`: an ordered list of
idempotent :class:`SagaStep`\\ s, each with a compensating ``undo``.

Crash semantics mirror the active relay's NVM journal: the log object
lives on the :class:`ControlPlaneNode` and *survives* a crash (it
models journaled controller state), while the in-flight orchestration
process dies — :class:`ControllerCrashed` is raised at the next step
boundary once :meth:`repro.faults.FaultInjector.crash` marks the node
down.  On :meth:`~repro.faults.FaultInjector.restart` the node's
``on_restart`` hook calls :meth:`repro.core.platform.StorM.recover`,
which resolves every in-flight saga to exactly one of two audited
states:

- the **pivot** step (commit barrier) completed → *roll forward*:
  re-run the remaining steps (all idempotent and synchronous by
  construction);
- otherwise → *roll back*: run the compensations of every started
  step in reverse order.

Either way no wildcard steering rule, transient NAT entry, or
half-spliced flow outlives recovery — the invariant the
:class:`repro.core.reconcile.Reconciler` audits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.link import Interface
from repro.net.packet import Packet
from repro.net.stack import Node
from repro.sim import Simulator

#: Saga lifecycle states.
IN_FLIGHT = "in-flight"
COMMITTED = "committed"
ABORTED = "aborted"


class SagaError(Exception):
    """Misuse of the saga machinery (e.g. replaying a yielding step)."""


class ControllerCrashed(Exception):
    """The control-plane node died mid-operation; recovery will finish
    or compensate the saga when the controller restarts."""

    def __init__(self, op: str, step: str = "") -> None:
        super().__init__(f"controller crashed during {op!r} (step {step or '<pre>'})")
        self.op = op
        self.step = step


class QuorumLost(ControllerCrashed):
    """The HA leader could not replicate a journal entry to a quorum
    of control-plane replicas (or lost its leadership): the entry does
    not commit and the saga is left in-flight for the next leader's
    takeover.  A subclass of :class:`ControllerCrashed` so the saga
    executors' crash handling applies unchanged."""


@dataclass
class SagaStep:
    """One idempotent unit of a control operation.

    ``do`` either returns a value (synchronous step) or a generator
    (the executor runs it as a child process — only allowed *before*
    the pivot, so crash recovery never needs to resume a yield).
    ``undo`` compensates a started-but-unfinished or rolled-back step
    and must tolerate the step having only partially applied.
    """

    name: str
    do: Callable[[], Any]
    undo: Optional[Callable[[], None]] = None
    #: commit barrier: once this step's completion is journaled, crash
    #: recovery rolls the saga *forward* instead of compensating.
    pivot: bool = False
    #: run while holding the platform attach mutex (the executor
    #: releases the mutex before the first non-locked step).
    locked: bool = True
    #: stash the step result under this key in the saga's shared state.
    store: Optional[str] = None
    #: declares that this step intentionally has no compensator: it is
    #: idempotent teardown that recovery re-drives forward rather than
    #: undoing.  Purely declarative (an absent ``undo`` already runs
    #: nothing) — but stormlint's ``saga-compensated`` contract rule
    #: requires every pre-pivot step to carry either an ``undo`` or
    #: this marker, so the "no compensator" decision is always explicit
    #: and reviewable at the call site.
    forward_only: bool = False


class Saga:
    """A journaled control operation: steps + append-only journal."""

    def __init__(
        self,
        saga_id: int,
        op: str,
        cookie: str,
        steps: list[SagaStep],
        detail: Optional[dict[str, Any]] = None,
    ) -> None:
        self.saga_id = saga_id
        self.op = op
        self.cookie = cookie
        self.steps = steps
        self.detail = detail or {}
        self.status = IN_FLIGHT
        self.pivoted = False
        #: append-only journal: "begin", "start:<step>", "done:<step>",
        #: "pivot", "commit", "abort"
        self.journal: list[str] = ["begin"]
        #: per-step results (survive the crash alongside the journal,
        #: like the relay's NVM payloads)
        self.results: dict[str, Any] = {}
        #: shared mutable state the step closures read/write
        self.state: dict[str, Any] = {}
        #: HA provenance (:mod:`repro.core.ha`): the leadership term
        #: and leader node that began (or adopted) this saga.  Zero /
        #: empty on the single-node platform.
        self.term = 0
        self.origin = ""
        #: HA hook: when set, :meth:`mark` forwards every journal
        #: entry through it (``shipper(saga, entry)``) so the entry is
        #: quorum-replicated *before* the step it records executes.
        #: The hook may raise :class:`QuorumLost`; the entry stays in
        #: the local journal either way (append-then-ship — exactly
        #: what compensation closures must tolerate).
        self.shipper: Optional[Callable[["Saga", str], None]] = None
        #: cumulative replication round-trip time this saga's journal
        #: entries spent on the HA shipping mesh (seconds of simulated
        #: link latency; the slowest acked peer per entry).  Zero on
        #: the single-node platform.  The fleet harness charges this
        #: into the ``fleet.attach.latency`` histogram so attach p99
        #: reflects quorum shipping, not just data-plane connect time.
        self.ship_rtt = 0.0

    def mark(self, entry: str) -> None:
        self.journal.append(entry)
        if self.shipper is not None:
            self.shipper(self, entry)

    def started(self, step_name: str) -> bool:
        return f"start:{step_name}" in self.journal

    def done(self, step_name: str) -> bool:
        return f"done:{step_name}" in self.journal

    @property
    def incomplete(self) -> bool:
        return self.status == IN_FLIGHT

    def __repr__(self) -> str:
        return f"Saga#{self.saga_id}({self.op}, {self.cookie}, {self.status})"


class IntentLog:
    """Write-ahead journal of control operations (controller NVM).

    Purely passive storage: the executor in
    :class:`~repro.core.platform.StorM` appends sagas and journal
    entries; recovery and the reconciler read them back.
    """

    def __init__(self) -> None:
        self.sagas: list[Saga] = []
        self._ids = itertools.count(1)
        #: HA hook (:class:`repro.core.ha.HaCluster`): when set, every
        #: new saga is quorum-replicated at creation (``ship_begin``)
        #: and its journal entries ship through :attr:`Saga.shipper`.
        self.shipper: Optional[Any] = None
        #: sagas snapshotted away by :meth:`compact`, by final status
        self.compacted_committed = 0
        self.compacted_aborted = 0

    def begin(
        self,
        op: str,
        cookie: str,
        steps: list[SagaStep],
        detail: Optional[dict[str, Any]] = None,
    ) -> Saga:
        saga = Saga(next(self._ids), op, cookie, steps, detail)
        self.sagas.append(saga)
        if self.shipper is not None:
            self.shipper.ship_begin(saga)  # may raise QuorumLost
        return saga

    def incomplete(self) -> list[Saga]:
        """Sagas with neither a commit nor an abort record."""
        return [s for s in self.sagas if s.incomplete]

    def in_flight_cookies(self) -> set[str]:
        """Cookies of live operations — the reconciler must not treat
        their transient rules as drift.  Assumes :meth:`recover` has
        already resolved any crash-orphaned sagas."""
        return {s.cookie for s in self.sagas if s.incomplete}

    def by_op(self, op: str) -> list[Saga]:
        return [s for s in self.sagas if s.op == op]

    def compact(self) -> int:
        """Snapshot resolved sagas out of the log, so crash replay
        (:meth:`~repro.core.platform.StorM.recover` iterates
        :meth:`incomplete`) and HA log-shipping catch-up stay
        O(active sagas) instead of O(all history).  Only counters
        remain for the dropped sagas; in-flight sagas — the only ones
        recovery can act on — are untouched, so replay after
        compaction resolves exactly what replay without it would."""
        resolved = [s for s in self.sagas if not s.incomplete]
        if not resolved:
            return 0
        for saga in resolved:
            if saga.status == COMMITTED:
                self.compacted_committed += 1
            else:
                self.compacted_aborted += 1
        self.sagas = [s for s in self.sagas if s.incomplete]
        return len(resolved)

    @property
    def compacted(self) -> int:
        return self.compacted_committed + self.compacted_aborted

    def __len__(self) -> int:
        return len(self.sagas)


class ControlPlaneNode(Node):
    """The StorM controller as a crashable node.

    On the single-node platform it has no NICs (the simulated control
    channel is direct method calls), but being a
    :class:`~repro.net.stack.Node` means
    :meth:`repro.faults.FaultInjector.crash` /
    :meth:`~repro.faults.FaultInjector.restart` treat it exactly like
    any other machine.  The saga executor checks :attr:`crashed` at
    every step boundary; the injector invokes :attr:`on_restart`
    (wired to ``StorM.recover``, or to the HA cluster's rejoin) when
    the node comes back.

    With :mod:`repro.core.ha` the replicas additionally get real NICs
    on real replication links; :attr:`on_message` intercepts their
    election/heartbeat traffic before the TCP stack (which would drop
    the non-TCP payloads).
    """

    def __init__(self, sim: Simulator, name: str = "storm-controller") -> None:
        super().__init__(sim, name)
        #: called by the fault injector after a restart re-plugs the
        #: node; StorM points this at its crash-recovery routine (the
        #: HA cluster points it at the replica's rejoin handler).
        self.on_restart: Optional[Callable[[], Any]] = None
        #: HA control-message handler; when set, every frame addressed
        #: to this node's NICs is delivered here instead of the stack.
        self.on_message: Optional[Callable[[Any], None]] = None

    def receive(self, packet: Packet, iface: Interface) -> None:
        handler = self.on_message
        if handler is None:
            super().receive(packet, iface)
            return
        if self.crashed or packet.dst_mac != iface.mac:
            return
        packet.record_hop(self.name)
        handler(packet.payload)
