"""Middle-box health watchdog (tenant-selectable failure policy).

A middle-box VM that crashes mid-flow leaves the tenant with a hard
choice the platform must make for them, per tenant policy:

- **fail-open** — availability first: *heal the chain at full
  strength* by borrowing replacement capacity from a
  :class:`~repro.core.scaling.MiddleboxAutoscaler` pool
  (``capacity_pool=``) — each dead member is substituted by a
  borrowed box and the flow re-steered onto the full-length chain, so
  no service link is dropped under load.  Only when the pool is
  exhausted (or no pool is wired) does the watchdog fall back to the
  classic bypass: re-steer the flow onto the surviving chain members
  (make-before-break, via the same SDN-only path the autoscaler's
  rebalance uses).  Either way the original chain is *reinstated* —
  and borrowed capacity returned — when the dead boxes come back.
  Only valid for forwarding-mode chains: an active relay holds
  per-flow TCP state that a bypass would corrupt.

- **fail-closed** — the service is load-bearing (encryption,
  access control): *quiesce* the flow with high-priority drop rules
  until every chain member is healthy again, then lift the quiesce and
  let TCP retransmission resume the connection.

Chains containing active relays are always fail-closed regardless of
policy.  Every transition is recorded (``watchdog.borrow`` /
``watchdog.heal`` / ``watchdog.bypass`` / ``watchdog.reinstate`` /
``watchdog.restore`` / ``watchdog.quiesce`` / ``watchdog.unquiesce``)
so chaos runs can narrate the failover timeline.

When the cloud runs with end-to-end integrity
(``CloudParams.integrity``), the watchdog also consults the
:class:`~repro.integrity.layer.TamperBreaker`: a flow whose breaker is
tripped by a tamper burst is held *fail-closed* — quiesced regardless
of tenant policy — until the breaker's cooldown expires
(``watchdog.integrity-trip`` / ``watchdog.integrity-clear``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.middlebox import MiddleBox
from repro.core.relay import RelayMode
from repro.core.scaling import resteer_flow

FAIL_OPEN = "fail-open"
FAIL_CLOSED = "fail-closed"


def _mb_healthy(mb: MiddleBox) -> bool:
    if getattr(mb, "crashed", False):
        return False
    iface = getattr(mb, "instance_iface", None)
    return iface is None or iface.link is not None


class ChainWatchdog:
    """Periodically probes every middle-box of the watched flows and
    applies the tenant's failure policy on state changes."""

    def __init__(
        self,
        storm,
        flows=None,
        check_interval: float = 0.25,
        default_policy: str = FAIL_OPEN,
        tenant_policies: Optional[dict[str, str]] = None,
        event_log=None,
        capacity_pool=None,
    ):
        if default_policy not in (FAIL_OPEN, FAIL_CLOSED):
            raise ValueError(f"unknown watchdog policy {default_policy!r}")
        self.storm = storm
        #: None = watch every platform flow, live list otherwise
        self.flows = flows
        self.check_interval = check_interval
        self.default_policy = default_policy
        self.tenant_policies = dict(tenant_policies or {})
        self.event_log = event_log if event_log is not None else storm.event_log
        #: observability bus inherited from the platform (None = off)
        self.obs = getattr(storm, "obs", None)
        #: :class:`~repro.core.scaling.MiddleboxAutoscaler` to borrow
        #: replacement capacity from on fail-open (None = bypass only)
        self.capacity_pool = capacity_pool
        #: flow cookie -> the chain the tenant *wants* (first seen);
        #: StorMFlow holds lists and is unhashable, so key by cookie.
        self._desired: dict[str, list[MiddleBox]] = {}
        #: flow cookies currently steered around dead members
        self._bypassed: set[str] = set()
        #: flow cookies quiesced by an integrity-breaker trip (kept
        #: separate from the health quiesce so a clean probe round
        #: cannot lift a tamper lockout early)
        self._integrity_quiesced: set[str] = set()
        #: flow cookie -> {dead member name: borrowed replacement}
        self._borrowed: dict[str, dict[str, MiddleBox]] = {}
        self.stopped = False

    def _record(self, kind: str, flow, **detail) -> None:
        if self.event_log is not None:
            self.event_log.record(self.storm.sim.now, kind, flow.cookie, **detail)

    def _policy(self, flow) -> str:
        policy = self.tenant_policies.get(flow.tenant_name, self.default_policy)
        if any(mb.relay_mode is RelayMode.ACTIVE for mb in self._desired[flow.cookie]):
            return FAIL_CLOSED  # bypass would corrupt relay TCP state
        return policy

    def _watched_flows(self):
        flows = self.storm.flows if self.flows is None else self.flows
        return [f for f in flows if not f.detached]

    # -- one probe round ----------------------------------------------------

    def tick(self) -> None:
        if self.obs is not None:
            self.obs.metrics.counter("watchdog.probes").inc()
        flows = self._watched_flows()
        self._forget_detached(flows)
        for flow in flows:
            desired = self._desired.setdefault(
                flow.cookie, list(flow.middleboxes)
            )
            if self._apply_integrity(flow):
                continue  # tamper lockout overrides the health policy
            if not desired:
                continue
            dead = [mb for mb in desired if not _mb_healthy(mb)]
            if self._policy(flow) == FAIL_CLOSED:
                self._apply_fail_closed(flow, dead)
            else:
                self._apply_fail_open(flow, desired, dead)

    def _forget_detached(self, flows) -> None:
        """Detached flows have left the rules: drop their desired-chain
        and bypass entries and return any boxes still on loan, so
        watchdog state stays O(active flows) under fleet churn."""
        live = {f.cookie for f in flows}
        for cookie in [c for c in self._desired if c not in live]:
            del self._desired[cookie]
            self._bypassed.discard(cookie)
            self._integrity_quiesced.discard(cookie)
            lent = self._borrowed.pop(cookie, None)
            if lent and self.capacity_pool is not None:
                for name in lent:
                    self.capacity_pool.restore(lent[name])

    def _demote_express(self, reason: str) -> None:
        """Watchdog actions change the data path out from under any
        promoted flow: force everything back to packet mode first."""
        express = self.storm.sim.express
        if express is not None:
            express.demote_all(reason)

    def _apply_integrity(self, flow) -> bool:
        """Hold the flow fail-closed while its tamper breaker is
        tripped.  True = the lockout is active and normal policy is
        suspended for this probe round; on expiry the cookie is cleared
        and the regular policy path (which unquiesces a healthy chain)
        takes over again."""
        layer = getattr(self.storm, "integrity", None)
        if layer is None:
            return False
        iqn = self.storm._flow_iqn(flow)
        if iqn is None:
            return False
        if layer.tripped(iqn):
            if flow.cookie not in self._integrity_quiesced:
                self._integrity_quiesced.add(flow.cookie)
                self._demote_express("integrity-trip")
                if not flow.chain.quiesced:
                    flow.chain.quiesce()
                self._record("watchdog.integrity-trip", flow, iqn=iqn)
            return True
        if flow.cookie in self._integrity_quiesced:
            self._integrity_quiesced.discard(flow.cookie)
            self._record("watchdog.integrity-clear", flow)
            # a chainless flow never reaches the policy paths below, so
            # lift its quiesce here; chained flows unquiesce there
            if not self._desired.get(flow.cookie) and flow.chain.quiesced:
                flow.chain.unquiesce()
                self._record("watchdog.unquiesce", flow)
        return False

    def _apply_fail_closed(self, flow, dead) -> None:
        if dead and not flow.chain.quiesced:
            self._demote_express("watchdog-quiesce")
            flow.chain.quiesce()
            self._record("watchdog.quiesce", flow, dead=[mb.name for mb in dead])
        elif not dead and flow.chain.quiesced:
            flow.chain.unquiesce()
            self._record("watchdog.unquiesce", flow)

    def _borrow_replacements(self, flow, dead, lent) -> list[MiddleBox]:
        """Bring the flow's loan ledger up to date: pop entries that no
        longer apply (the member recovered, or the replacement itself
        died) and borrow a replacement for every dead member without
        one.  Returns the popped boxes — the caller restores them to
        the pool *after* re-steering the flow off them."""
        returns: list[MiddleBox] = []
        dead_names = {mb.name for mb in dead}
        for name in [n for n in lent if n not in dead_names or not _mb_healthy(lent[n])]:
            returns.append(lent.pop(name))
        for mb in dead:
            if mb.name in lent:
                continue
            replacement = self.capacity_pool.borrow()
            if replacement is None:
                break  # capacity budget exhausted: bypass what's left
            lent[mb.name] = replacement
            self._record(
                "watchdog.borrow", flow, dead=mb.name, replacement=replacement.name
            )
        return returns

    def _apply_fail_open(self, flow, desired, dead) -> None:
        if dead:
            returns: list[MiddleBox] = []
            if self.capacity_pool is not None:
                lent = self._borrowed.setdefault(flow.cookie, {})
                returns = self._borrow_replacements(flow, dead, lent)
            else:
                lent = {}
            # full-strength first: every desired member, substituting
            # borrowed replacements for the dead; bypass is what's left
            # when the pool couldn't cover someone
            target = [
                mb if _mb_healthy(mb) else lent.get(mb.name)
                for mb in desired
            ]
            target = [mb for mb in target if mb is not None]
            if not target:
                # nothing to steer through — last-resort quiesce rather
                # than steering traffic at a dark MAC; keep any popped
                # loans on the ledger (they may still be in the rules)
                for box in returns:
                    lent[f"{box.name}"] = box
                self._apply_fail_closed(flow, dead)
                return
            if flow.chain.quiesced:  # partial recovery from a total outage
                flow.chain.unquiesce()
                self._record("watchdog.unquiesce", flow)
            healed = all(mb.name in lent for mb in dead)
            self._demote_express("watchdog-heal" if healed else "watchdog-bypass")
            if resteer_flow(self.storm, flow, target):
                if healed:
                    self._record(
                        "watchdog.heal",
                        flow,
                        dead=[mb.name for mb in dead],
                        chain=[mb.name for mb in target],
                    )
                else:
                    self._bypassed.add(flow.cookie)
                    self._record(
                        "watchdog.bypass",
                        flow,
                        dead=[mb.name for mb in dead],
                        chain=[mb.name for mb in target],
                    )
            for box in returns:  # now off the flow's rules: safe to return
                self._restore_box(flow, box)
        else:
            if flow.chain.quiesced:  # recovery from a total outage
                flow.chain.unquiesce()
                self._record("watchdog.unquiesce", flow)
            lent = self._borrowed.pop(flow.cookie, None)
            if lent or flow.cookie in self._bypassed:
                if resteer_flow(self.storm, flow, desired):
                    self._record(
                        "watchdog.reinstate", flow, chain=[mb.name for mb in desired]
                    )
                self._bypassed.discard(flow.cookie)
                for name in lent or {}:
                    self._restore_box(flow, lent[name])

    def _restore_box(self, flow, box: MiddleBox) -> None:
        self._record("watchdog.restore", flow, replacement=box.name)
        self.capacity_pool.restore(box)

    # -- the loop -----------------------------------------------------------

    def run(self, duration: Optional[float] = None):
        """Process: probe every ``check_interval`` until stopped."""
        sim = self.storm.sim
        deadline = None if duration is None else sim.now + duration
        while not self.stopped and (deadline is None or sim.now < deadline):
            yield sim.timeout(self.check_interval)
            self.tick()

    def stop(self) -> None:
        self.stopped = True
