"""StorM: the tenant-defined storage middle-box platform.

The paper's three mechanisms, each in its own module:

- **network splicing** — :mod:`repro.core.attribution` (which VM owns
  which iSCSI connection), :mod:`repro.core.splicing` (storage
  gateways + NAT + the atomic volume attach), and
  :mod:`repro.core.steering` (SDN ``mod_dst_mac`` chains, Fig. 3);
- **platform efficiency** — :mod:`repro.core.relay` (the passive-relay
  netfilter hook and the novel split-TCP active relay with immediate
  ACKs and NVM buffering);
- **semantic reconstruction** — :mod:`repro.core.semantics` (block→file
  mapping kept live from intercepted metadata writes).

:mod:`repro.core.policy` defines the tenant policy schema and
:mod:`repro.core.platform` orchestrates deployment end to end.
"""

from repro.core.attribution import AttributionRecord, ConnectionAttributor
from repro.core.middlebox import MiddleBox, StorageService, payload_bytes
from repro.core.relay import ActiveRelay, PassiveRelay, RelayMode
from repro.core.splicing import GatewayPair, StorageGateway
from repro.core.steering import SteeringChain, build_chain_rules
from repro.core.semantics import AccessRecord, SemanticsEngine
from repro.core.policy import ChainPolicy, PolicyError, ServiceSpec, TenantPolicy, parse_policy
from repro.core.platform import StorM, StorMFlow
from repro.core.ha import HaCluster, HaConfig, ReplicaLog
from repro.core.saga import (
    ControlPlaneNode,
    ControllerCrashed,
    IntentLog,
    QuorumLost,
    Saga,
    SagaStep,
)
from repro.core.scaling import MiddleboxAutoscaler, ScalingEvent, resteer_flow
from repro.core.reconcile import Drift, Reconciler
from repro.core.watchdog import ChainWatchdog

__all__ = [
    "AccessRecord",
    "ActiveRelay",
    "AttributionRecord",
    "ChainPolicy",
    "ChainWatchdog",
    "ConnectionAttributor",
    "ControlPlaneNode",
    "ControllerCrashed",
    "Drift",
    "GatewayPair",
    "HaCluster",
    "HaConfig",
    "IntentLog",
    "MiddleboxAutoscaler",
    "QuorumLost",
    "Reconciler",
    "ReplicaLog",
    "Saga",
    "SagaStep",
    "ScalingEvent",
    "MiddleBox",
    "PassiveRelay",
    "PolicyError",
    "RelayMode",
    "SemanticsEngine",
    "ServiceSpec",
    "SteeringChain",
    "StorM",
    "StorMFlow",
    "StorageGateway",
    "StorageService",
    "TenantPolicy",
    "build_chain_rules",
    "payload_bytes",
    "resteer_flow",
]
