"""On-demand middle-box scaling (paper §II-B, §III-A).

"These services, like VMs, can be scaled up and down, depending upon
the traffic load, making them truly elastic" — StorM "provides
on-demand middle-box service scaling by dynamically adding or removing
middle-boxes on the storage traffic path by programming SDN switches."

:class:`MiddleboxAutoscaler` watches the packet load of a pool of
forwarding-mode middle-boxes serving a set of flows, grows the pool
when the per-box load crosses the high watermark, shrinks it at the
low watermark, and rebalances flows across the pool purely by
reprogramming steering rules (no connection state moves — which is
why, like :meth:`~repro.core.platform.StorM.reconfigure_chain`, this
is restricted to forwarding-mode chains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.middlebox import MiddleBox
from repro.core.platform import StorM, StorMFlow
from repro.core.policy import PolicyError, ServiceSpec


@dataclass
class ScalingEvent:
    when: float
    #: "grow" | "shrink" | "rebalance" | "evict" | "replace" |
    #: "lend" | "restore"
    action: str
    pool_size: int
    load_per_box: float


def resteer_flow(storm: StorM, flow: StorMFlow, middleboxes: list[MiddleBox]) -> bool:
    """Re-steer one flow onto a new forwarding chain via SDN only
    (make-before-break).  No-op if the chain is already the target.
    Shared by the autoscaler's rebalance and the health watchdog's
    fail-open bypass — both are pure rule reprogramming."""
    if flow.middleboxes == list(middleboxes):
        return False
    storm.reconfigure_chain(flow, list(middleboxes))
    return True


class MiddleboxAutoscaler:
    """Elastic pool of interchangeable forwarding middle-boxes."""

    def __init__(
        self,
        storm: StorM,
        tenant,
        template: ServiceSpec,
        flows: list[StorMFlow],
        initial_pool: Optional[list[MiddleBox]] = None,
        min_size: int = 1,
        max_size: int = 4,
        check_interval: float = 0.5,
        high_watermark: float = 2000.0,  # packets/s per box
        low_watermark: float = 200.0,
    ):
        if template.relay != "fwd":
            raise PolicyError("autoscaling requires forwarding-mode middle-boxes")
        if min_size < 1 or max_size < min_size:
            raise PolicyError("need 1 <= min_size <= max_size")
        self.storm = storm
        self.tenant = tenant
        self.template = template
        self.flows = list(flows)
        self.pool: list[MiddleBox] = list(initial_pool or [])
        self.min_size = min_size
        self.max_size = max_size
        self.check_interval = check_interval
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.events: list[ScalingEvent] = []
        self._clone_counter = 0
        self._last_packet_count = 0
        self.stopped = False
        self.replacements = 0
        #: boxes on loan to the :class:`~repro.core.watchdog.ChainWatchdog`
        #: for full-strength chain healing (:meth:`borrow` / :meth:`restore`);
        #: they count against ``max_size`` but carry none of the pool's flows.
        self.lent: list[MiddleBox] = []
        #: optional :class:`repro.analysis.EventLog` for healing timelines
        self.event_log = None

    # -- pool management ---------------------------------------------------

    def _provision_clone(self) -> MiddleBox:
        self._clone_counter += 1
        spec = ServiceSpec(
            name=f"{self.template.name}-clone{self._clone_counter}",
            kind=self.template.kind,
            vcpus=self.template.vcpus,
            memory_mb=self.template.memory_mb,
            relay="fwd",
            options=dict(self.template.options),
        )
        return self.storm.provision_middlebox(self.tenant, spec)

    def _pool_packets(self) -> int:
        return sum(mb.instance_iface.rx_packets for mb in self.pool)

    def _rebalance(self) -> None:
        """Assign flows round-robin across the pool via SDN only."""
        for index, flow in enumerate(self.flows):
            target = self.pool[index % len(self.pool)]
            resteer_flow(self.storm, flow, [target])
        self.events.append(
            ScalingEvent(self.storm.sim.now, "rebalance", len(self.pool), 0.0)
        )

    # -- capacity lending (watchdog chain healing) -------------------------

    def borrow(self) -> Optional[MiddleBox]:
        """Lend one healthy forwarding box as replacement capacity.

        Prefers spare pool capacity (a box beyond ``min_size``, whose
        flows are first rebalanced off it); otherwise provisions a
        clone if the pool plus outstanding loans is under ``max_size``.
        Returns ``None`` when the tenant's capacity budget is
        exhausted — the caller falls back to bypass/quiesce."""
        sim = self.storm.sim
        if len(self.pool) > self.min_size:
            box = self.pool.pop()
            if self.flows:
                self._rebalance()  # steer pool flows off the loaned box
        elif len(self.pool) + len(self.lent) < self.max_size:
            box = self._provision_clone()
        else:
            return None
        self.lent.append(box)
        self.events.append(ScalingEvent(sim.now, "lend", len(self.pool), 0.0))
        if self.event_log is not None:
            self.event_log.record(sim.now, "pool.lend", box.name)
        self._last_packet_count = self._pool_packets()
        return box

    def restore(self, box: MiddleBox) -> None:
        """Take a loaned box back: rejoin the pool if it is healthy and
        there is room, reclaim its VM otherwise."""
        if box not in self.lent:
            return
        sim = self.storm.sim
        self.lent.remove(box)
        if not getattr(box, "crashed", False) and len(self.pool) < self.max_size:
            self.pool.append(box)
            if self.flows:
                self._rebalance()
        else:
            self.storm.deprovision_middlebox(box)
        self.events.append(ScalingEvent(sim.now, "restore", len(self.pool), 0.0))
        if self.event_log is not None:
            self.event_log.record(sim.now, "pool.restore", box.name)
        self._last_packet_count = self._pool_packets()

    def assignments(self) -> dict[str, list[str]]:
        """mb name -> flow volume names (for tests/observability)."""
        mapping: dict[str, list[str]] = {mb.name: [] for mb in self.pool}
        for flow in self.flows:
            for mb in flow.middleboxes:
                mapping.setdefault(mb.name, []).append(flow.volume_name)
        return mapping

    # -- the control loop -----------------------------------------------------

    def run(self, duration: Optional[float] = None):
        """Process: sample load every ``check_interval``; scale."""
        sim = self.storm.sim
        if not self.pool:
            self.pool.append(self._provision_clone())
            self._rebalance()
        self._last_packet_count = self._pool_packets()
        deadline = None if duration is None else sim.now + duration
        while not self.stopped and (deadline is None or sim.now < deadline):
            yield sim.timeout(self.check_interval)
            crashed = [mb for mb in self.pool if getattr(mb, "crashed", False)]
            if crashed:
                self._heal(crashed)
                continue
            total = self._pool_packets()
            rate = (total - self._last_packet_count) / self.check_interval
            self._last_packet_count = total
            per_box = rate / len(self.pool)
            if per_box > self.high_watermark and len(self.pool) < self.max_size:
                self.pool.append(self._provision_clone())
                self.events.append(
                    ScalingEvent(sim.now, "grow", len(self.pool), per_box)
                )
                self._rebalance()
            elif per_box < self.low_watermark and len(self.pool) > self.min_size:
                retired = self.pool.pop()
                self.events.append(
                    ScalingEvent(sim.now, "shrink", len(self.pool), per_box)
                )
                self._rebalance()  # steer flows off the box, then reclaim it
                self.storm.deprovision_middlebox(retired)
        return self.events

    def _heal(self, crashed: list[MiddleBox]) -> None:
        """Evict crashed boxes, provision replacements up to the pool
        target, re-steer flows, then reclaim the dead VMs' resources."""
        sim = self.storm.sim
        for mb in crashed:
            self.pool.remove(mb)
            self.events.append(
                ScalingEvent(sim.now, "evict", len(self.pool), 0.0)
            )
            if self.event_log is not None:
                self.event_log.record(sim.now, "pool.evict", mb.name)
        want = min(self.max_size, max(self.min_size, len(self.pool) + len(crashed)))
        while len(self.pool) < want:
            clone = self._provision_clone()
            self.pool.append(clone)
            self.replacements += 1
            self.events.append(
                ScalingEvent(sim.now, "replace", len(self.pool), 0.0)
            )
            if self.event_log is not None:
                self.event_log.record(sim.now, "pool.replace", clone.name)
        self._rebalance()
        for mb in crashed:
            self.storm.deprovision_middlebox(mb)
        # the dead boxes' packet counters left the pool with them
        self._last_packet_count = self._pool_packets()

    def stop(self) -> None:
        self.stopped = True
