"""Network splicing: storage gateways and the attach-time NAT rules.

A pair of per-tenant gateways bridges the isolated storage and
instance networks (paper §III-A): the *ingress* gateway pulls a flow
from the storage network into the tenant's virtual network, the
*egress* gateway returns it to the storage server.  IP masquerading on
both keeps storage-network addresses from ever appearing on the
instance network, and makes middle-boxes see only gateway addresses.

The NAT rules are *transient*: they exist only during the atomic
volume attach (installed → connect → removed), and the established
flow survives on conntrack — exactly the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.compute import ComputeHost
from repro.cloud.controller import CloudController
from repro.cloud.tenant import Tenant
from repro.iscsi.pdu import ISCSI_PORT
from repro.net.nat import NatRule
from repro.net.packet import FiveTuple
from repro.net.stack import Node
from repro.sim import Simulator


class StorageGateway(Node):
    """A dual-homed forwarding VM inside the tenant's network space."""

    def __init__(self, sim: Simulator, name: str, tenant: Tenant):
        super().__init__(sim, name)
        self.tenant = tenant
        self.host_name: str | None = None

    @property
    def storage_iface(self):
        return self._iface_by_prefix("st")

    @property
    def instance_iface(self):
        return self._iface_by_prefix("inst")

    def _iface_by_prefix(self, prefix: str):
        for iface in self.interfaces:
            if iface.name.split(".")[-1].startswith(prefix):
                return iface
        raise RuntimeError(f"gateway {self.name} missing {prefix!r} interface")

    @property
    def storage_ip(self) -> str:
        return self.storage_iface.ip

    @property
    def instance_ip(self) -> str:
        return self.instance_iface.ip

    @property
    def instance_mac(self) -> str:
        return self.instance_iface.mac


@dataclass
class GatewayPair:
    ingress: StorageGateway
    egress: StorageGateway


def create_gateway(
    cloud: CloudController,
    tenant: Tenant,
    name: str,
    host: ComputeHost,
) -> StorageGateway:
    """Provision one gateway VM on ``host`` with NICs in both networks."""
    gateway = StorageGateway(cloud.sim, name, tenant)
    gateway.host_name = host.name
    cloud.plug_instance_iface(gateway, host, tenant)
    cloud.plug_storage_iface(gateway)
    gateway.stack.ip_forward = True
    gateway.stack.forward_delay = cloud.params.gateway_forward_delay
    return gateway


def create_gateway_pair(
    cloud: CloudController,
    tenant: Tenant,
    ingress_host: ComputeHost,
    egress_host: ComputeHost,
) -> GatewayPair:
    ingress = create_gateway(cloud, tenant, f"sgw-in-{tenant.name}", ingress_host)
    egress = create_gateway(cloud, tenant, f"sgw-out-{tenant.name}", egress_host)
    return GatewayPair(ingress, egress)


def install_attach_nat(
    host: ComputeHost,
    gateways: GatewayPair,
    target_ip: str,
    cookie: str,
    port: int = ISCSI_PORT,
) -> None:
    """Install the three transient NAT rules for one volume attach.

    - on the VM's host: redirect the new connection to the ingress
      gateway (OUTPUT, 3-tuple match — hence the mutex);
    - on the ingress gateway: masquerade into the instance network and
      point the flow at the egress gateway;
    - on the egress gateway: masquerade back into the storage network
      and restore the true target address.
    """
    host.stack.nat.install(
        NatRule(
            match_dst_ip=target_ip,
            match_dst_port=port,
            dnat_ip=gateways.ingress.storage_ip,
            hook="output",
            cookie=cookie,
        )
    )
    gateways.ingress.stack.nat.install(
        NatRule(
            match_dst_ip=gateways.ingress.storage_ip,
            match_dst_port=port,
            snat_ip=gateways.ingress.instance_ip,
            dnat_ip=gateways.egress.instance_ip,
            hook="prerouting",
            cookie=cookie,
        )
    )
    gateways.egress.stack.nat.install(
        NatRule(
            match_dst_ip=gateways.egress.instance_ip,
            match_dst_port=port,
            snat_ip=gateways.egress.storage_ip,
            dnat_ip=target_ip,
            hook="prerouting",
            cookie=cookie,
        )
    )


def remove_attach_nat(host: ComputeHost, gateways: GatewayPair, cookie: str) -> int:
    """Remove the transient rules; established flows keep their conntrack."""
    removed = host.stack.nat.remove_by_cookie(cookie)
    removed += gateways.ingress.stack.nat.remove_by_cookie(cookie)
    removed += gateways.egress.stack.nat.remove_by_cookie(cookie)
    return removed


def forget_attach_conntrack(
    host: ComputeHost,
    gateways: GatewayPair,
    target_ip: str,
    src_port: int,
    port: int = ISCSI_PORT,
) -> int:
    """Drop the conntrack entries one attach pinned, on all three hops.

    The tuples are exactly what :func:`install_attach_nat`'s rules
    recorded for a connection from ``host``'s storage NIC on
    ``src_port``: the original flow at the host's OUTPUT hook, the
    host-DNATed flow arriving at the ingress gateway, and the
    ingress-masqueraded flow arriving at the egress gateway.  Returns
    the number of forward entries removed (reply entries go with
    them).  Safe any time after the flow's session is closed — without
    this, conntrack grows O(ever-attached) under fleet churn.
    """
    src_ip = host.storage_iface.ip
    removed = 0
    for nat, original in (
        (host.stack.nat, FiveTuple("tcp", src_ip, src_port, target_ip, port)),
        (
            gateways.ingress.stack.nat,
            FiveTuple("tcp", src_ip, src_port, gateways.ingress.storage_ip, port),
        ),
        (
            gateways.egress.stack.nat,
            FiveTuple(
                "tcp",
                gateways.ingress.instance_ip,
                src_port,
                gateways.egress.instance_ip,
                port,
            ),
        ),
    ):
        before = len(nat.conntrack)
        nat.conntrack.forget(original)
        removed += before - len(nat.conntrack)
    return removed


def release_gateway_pair(cloud: CloudController, pair: GatewayPair) -> None:
    """Reverse of :func:`create_gateway_pair`: unplug both gateways'
    NICs from the host OVS and the storage switch and retire their
    addresses.  Idempotent; callers must first ensure no live flow
    still traverses the pair."""
    for gateway in (pair.ingress, pair.egress):
        host = cloud.compute_hosts.get(gateway.host_name or "")
        if host is not None:
            cloud.unplug_instance_iface(gateway, host)
        cloud.unplug_storage_iface(gateway)
