"""Connection attribution (paper §III-A).

iSCSI connections originate from the *host* initiator, so their TCP
4-tuples carry host addresses only.  StorM recovers which VM owns each
connection by combining two sources the paper identifies:

1. the hypervisor's record of which virtual block device (IQN) is
   attached to which VM, and
2. the modified iSCSI Login Session code that exposes the TCP source
   port alongside the IQN at login time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.compute import ComputeHost


@dataclass
class AttributionRecord:
    """One attributed storage connection."""

    host_name: str
    host_ip: str
    local_port: int
    iqn: str
    vm_name: str
    volume_name: str


class ConnectionAttributor:
    """Maps (host_ip, src_port) → owning VM and volume."""

    def __init__(self):
        self._by_flow: dict[tuple[str, int], AttributionRecord] = {}
        self._watched: set[str] = set()

    def watch_host(self, host: ComputeHost) -> None:
        """Install the login hook on a host's initiator (idempotent)."""
        if host.name in self._watched:
            return
        self._watched.add(host.name)

        def on_login(iqn: str, local_port: int) -> None:
            attachment = host.hypervisor.attachment_for_iqn(iqn)
            if attachment is None:
                return  # a connection StorM was not asked to manage
            record = AttributionRecord(
                host_name=host.name,
                host_ip=host.storage_iface.ip,
                local_port=local_port,
                iqn=iqn,
                vm_name=attachment.vm_name,
                volume_name=attachment.volume_name,
            )
            self._by_flow[(record.host_ip, local_port)] = record

        host.initiator.login_hooks.append(on_login)

    def attribute(self, host_ip: str, src_port: int) -> Optional[AttributionRecord]:
        return self._by_flow.get((host_ip, src_port))

    def forget(self, host_ip: str, src_port: int) -> None:
        """Drop a closed connection's record (the detach path calls
        this so attribution state stays O(active flows))."""
        self._by_flow.pop((host_ip, src_port), None)

    def records_for_vm(self, vm_name: str) -> list[AttributionRecord]:
        return [r for r in self._by_flow.values() if r.vm_name == vm_name]

    def __len__(self) -> int:
        return len(self._by_flow)
