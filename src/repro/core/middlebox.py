"""Middle-box VMs and the storage-service API.

A middle-box is a minimal VM provisioned by the provider but running
tenant-defined service logic.  The only in-guest network configuration
is IP forwarding (paper §III-A).  Services implement
:class:`StorageService`: per-PDU processing with simulated CPU cost,
optional payload transformation, or — for services like replication —
full takeover of command handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cloud.cpu import CpuMeter
from repro.iscsi.pdu import DataInPdu, ScsiCommandPdu
from repro.net.stack import Node
from repro.sim import Simulator

if TYPE_CHECKING:
    from repro.cloud.tenant import Tenant


def payload_bytes(pdu) -> int:
    """Data bytes a service actually processes in a PDU."""
    if isinstance(pdu, ScsiCommandPdu) and pdu.op == "write":
        return pdu.length
    if isinstance(pdu, DataInPdu):
        return pdu.length
    return 0


class StorageService:
    """Base class for tenant-defined middle-box services.

    Subclasses override :meth:`transform_upstream` /
    :meth:`transform_downstream` for per-PDU payload rewriting (e.g.
    encryption), or :meth:`process` for full control of forwarding
    (e.g. replication's fan-out and read striping).  ``cpu_per_byte``
    is the simulated CPU cost charged on the middle-box vCPUs.
    """

    name = "storage-service"
    cpu_per_byte: float = 0.0
    #: True = this service rewrites PDU payloads in flight (ciphers).
    #: The integrity layer then re-stamps the payload MAC under the
    #: hop's key as the PDU leaves the middle-box, so endpoints verify
    #: the transformed bytes instead of flagging a false tamper.
    transforms_payload: bool = False
    #: True = the active relay must buffer a whole PDU before calling
    #: :meth:`process` (no cut-through), so the service can still drop
    #: it or answer with ``ctx.reply`` — needed by gatekeeping services
    #: like access control.  Costs the pipelining benefit on large PDUs.
    requires_full_pdu: bool = False

    def __init__(self):
        self.middlebox: Optional["MiddleBox"] = None
        self.pdus_processed = 0
        #: observability bus hook — services record per-op counters
        #: scoped by tenant when set; None = no overhead.
        self.obs = None

    def attach(self, middlebox: "MiddleBox") -> None:
        self.middlebox = middlebox

    # -- default pipeline ------------------------------------------------

    def process(self, pdu, direction: str, ctx, charged: bool = False):
        """Process one PDU; ``direction`` is "upstream" (toward storage)
        or "downstream" (toward the VM).  ``ctx`` is a
        :class:`~repro.core.relay.RelayContext`: call ``ctx.forward(pdu)``
        to continue along the chain or ``ctx.reply(pdu)`` to answer the
        sender directly (active relay only).  ``charged`` is True when
        the relay already billed this PDU's per-byte CPU (it charges per
        chunk as segments arrive).  Default: charge CPU, apply the
        transform, forward."""
        cost = 0.0 if charged else self.cpu_per_byte * payload_bytes(pdu)
        if cost and self.middlebox is not None:
            yield from self.middlebox.cpu.consume(cost)
        self.pdus_processed += 1
        if direction == "upstream":
            pdu = self.transform_upstream(pdu)
        else:
            pdu = self.transform_downstream(pdu)
        if pdu is not None:
            ctx.forward(pdu)

    def transform_upstream(self, pdu):
        return pdu

    def transform_downstream(self, pdu):
        return pdu

    def on_flow_closed(self, reason: str) -> None:
        """Called when a relayed connection ends (EOF/reset)."""

    def on_volume_attached(self, volume, flow) -> None:
        """Called by the platform once the spliced attach completes —
        the point where StorM supplies the initial filesystem view to
        services that need one (paper §III-C)."""

    def on_volume_detached(self, flow) -> None:
        """Symmetric teardown notification: called exactly once when
        the platform detaches a flow this service was chained on —
        the hook for flushing caches or releasing per-flow state."""


class NoopService(StorageService):
    """Forwards unchanged — used for the MB-FWD/API overhead baselines."""

    name = "noop"


class MiddleBox(Node):
    """A middle-box VM: one instance-network NIC, metered vCPUs."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tenant: "Tenant",
        vcpus: int = 2,
        memory_mb: int = 4096,
    ):
        super().__init__(sim, name)
        self.tenant = tenant
        self.vcpus = vcpus
        self.memory_mb = memory_mb
        self.cpu = CpuMeter(sim, f"{name}.cpu", cores=vcpus)
        self.service: Optional[StorageService] = None
        self.relay = None  # PassiveRelay/ActiveRelay instance, if any
        self.relay_mode = None  # RelayMode, set at provisioning
        self.host_name: Optional[str] = None

    @property
    def instance_iface(self):
        if not self.interfaces:
            raise RuntimeError(f"middle-box {self.name} has no NIC yet")
        return self.interfaces[0]

    @property
    def mac(self) -> str:
        return self.instance_iface.mac

    @property
    def ip(self) -> str:
        return self.instance_iface.ip

    def install_service(self, service: StorageService) -> None:
        self.service = service
        service.attach(self)
