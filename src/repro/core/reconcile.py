"""Control-plane state reconciliation.

The saga machinery (:mod:`repro.core.saga`) keeps *individual*
operations atomic; the :class:`Reconciler` closes the remaining gap —
drift that no single operation owns: rules left behind by a crashed
non-transactional controller, a switch that lost rules the control
plane believes installed, stale shadowed generations from an
interrupted make-before-break swap, middle-box VMs whose flows are
long gone.

It compares three sources of truth:

- **desired state**: the platform's committed flows (``storm.flows``)
  and their steering chains;
- **actual state**: the rules physically present in the switch tables
  (:meth:`~repro.net.sdn.SdnController.iter_rules`) and the NAT tables
  on compute hosts and gateways;
- **in-flight state**: the intent log's live sagas, whose transient
  artifacts (wildcard rules, attach NAT) are expected, not drift.

``audit()`` is read-only and returns :class:`Drift` records;
``repair()`` fixes what it found and logs one ``reconcile.*`` event
per repair; ``run()`` is the periodic loop.  ``python -m
repro.core.reconcile --list-invariants`` prints the audited
invariants (used by CI as a smoke check).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Optional

#: (key, invariant) pairs — what ``audit`` checks.  Each Drift record
#: carries the key of the invariant it violates.
INVARIANTS: list[tuple[str, str]] = [
    (
        "rule-orphan",
        "every storm:/storm-obj: steering rule family on any switch belongs "
        "to a live flow or an in-flight saga",
    ),
    (
        "rule-stale-gen",
        "a live flow has rules only for its active generation (plus quiesce "
        "rules while quiesced) — no shadowed generations survive a swap",
    ),
    (
        "rule-missing",
        "a live flow's active generation has its full rule set (2 rules per "
        "middle-box) installed in the switch tables",
    ),
    (
        "nat-orphan",
        "no storm-cookied NAT rule exists on any compute host or gateway "
        "outside an in-flight attach saga",
    ),
    (
        "mb-orphan",
        "every provisioned middle-box is healthy or referenced by a flow; "
        "crashed flowless boxes are reclaimable",
    ),
]

_STORM_PREFIXES = ("storm:", "storm-obj:")


def _base_cookie(cookie: str) -> str:
    """Strip the generation/quiesce suffix: ``a#g2`` -> ``a``."""
    return cookie.split("#", 1)[0]


@dataclass
class Drift:
    """One detected divergence between desired and actual state."""

    kind: str  # an INVARIANTS key
    target: str  # cookie / host / middle-box name
    detail: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"Drift({self.kind}, {self.target}{', ' + extras if extras else ''})"


class Reconciler:
    """Audits and repairs SDN/NAT/middle-box state against the
    platform's committed flows."""

    def __init__(self, storm, event_log=None, gc_crashed_middleboxes: bool = False):
        self.storm = storm
        self.event_log = event_log if event_log is not None else storm.event_log
        #: observability bus inherited from the platform (None = off)
        self.obs = getattr(storm, "obs", None)
        #: deprovision crashed flowless middle-boxes during repair
        #: (off by default: the autoscaler may still be healing them)
        self.gc_crashed_middleboxes = gc_crashed_middleboxes
        self.repairs: list[Drift] = []
        self.stopped = False

    # -- state sources ------------------------------------------------------

    def _live_flows(self):
        return [f for f in self.storm.flows if not f.detached]

    def _in_flight_cookies(self) -> set[str]:
        log = self.storm.intent_log
        return log.in_flight_cookies() if log is not None else set()

    def _iter_nat_tables(self):
        yield from self.storm.cloud.iter_nat_tables()
        for pair in self.storm.gateway_pairs.values():
            yield pair.ingress.name, pair.ingress.stack.nat
            yield pair.egress.name, pair.egress.stack.nat

    # -- audit --------------------------------------------------------------

    def audit(self) -> list[Drift]:
        """Read-only sweep; returns every invariant violation found."""
        if self.obs is not None:
            self.obs.metrics.counter("reconcile.audits").inc()
        drifts: list[Drift] = []
        flows_by_cookie = {f.cookie: f for f in self._live_flows()}
        in_flight = self._in_flight_cookies()

        # actual rule state, grouped by base cookie
        actual: dict[str, list[tuple[str, object]]] = {}
        for switch_name, rule in self.storm.cloud.sdn.iter_rules():
            if rule.cookie is None:
                continue
            base = _base_cookie(rule.cookie)
            if base.startswith(_STORM_PREFIXES):
                actual.setdefault(base, []).append((switch_name, rule))

        for base, placed in actual.items():
            flow = flows_by_cookie.get(base)
            if flow is None:
                if base not in in_flight:
                    drifts.append(
                        Drift("rule-orphan", base, {"rules": len(placed)})
                    )
                continue
            active = flow.chain.active_cookie
            stale = sorted(
                {
                    rule.cookie
                    for _sw, rule in placed
                    if rule.cookie != active and not rule.cookie.endswith("#quiesce")
                }
            )
            if stale and base not in in_flight:
                drifts.append(Drift("rule-stale-gen", base, {"cookies": stale}))

        for flow in flows_by_cookie.values():
            if not flow.middleboxes or flow.cookie in in_flight:
                continue
            active = flow.chain.active_cookie
            have = sum(
                1
                for _sw, rule in actual.get(flow.cookie, [])
                if rule.cookie == active
            )
            want = flow.chain.expected_rule_count()
            if have < want:
                drifts.append(
                    Drift("rule-missing", flow.cookie, {"have": have, "want": want})
                )

        for host_name, nat in self._iter_nat_tables():
            leaked = sorted(
                c
                for c in nat.cookies()
                if c.startswith(_STORM_PREFIXES) and c not in in_flight
            )
            for cookie in leaked:
                drifts.append(
                    Drift(
                        "nat-orphan",
                        cookie,
                        {"host": host_name, "rules": len(nat.rules_for_cookie(cookie))},
                    )
                )

        chained = {
            mb.name for f in self._live_flows() for mb in f.middleboxes
        }
        for name, mb in self.storm.middleboxes.items():
            if getattr(mb, "crashed", False) and name not in chained:
                drifts.append(Drift("mb-orphan", name, {}))

        return drifts

    # -- repair -------------------------------------------------------------

    def repair(self) -> list[Drift]:
        """Fix every drift ``audit`` reports; returns what was repaired."""
        drifts = self.audit()
        sdn = self.storm.cloud.sdn
        for drift in drifts:
            if drift.kind == "rule-orphan":
                sdn.remove_by_cookie(drift.target, family=True)
            elif drift.kind == "rule-stale-gen":
                for cookie in drift.detail["cookies"]:
                    sdn.remove_by_cookie(cookie, family=False)
            elif drift.kind == "rule-missing":
                flow = next(
                    f for f in self._live_flows() if f.cookie == drift.target
                )
                flow.chain.install(flow.chain.src_port)
            elif drift.kind == "nat-orphan":
                for _host, nat in self._iter_nat_tables():
                    nat.remove_by_cookie(drift.target)
            elif drift.kind == "mb-orphan":
                if not self.gc_crashed_middleboxes:
                    continue
                mb = self.storm.middleboxes.get(drift.target)
                if mb is not None:
                    self.storm.deprovision_middlebox(mb)
            self.repairs.append(drift)
            if self.obs is not None:
                self.obs.metrics.counter("reconcile.repairs").inc()
            if self.event_log is not None:
                self.event_log.record(
                    self.storm.sim.now,
                    f"reconcile.{drift.kind}",
                    drift.target,
                    **drift.detail,
                )
        return drifts

    # -- the loop -----------------------------------------------------------

    def run(self, interval: float = 0.5, duration: Optional[float] = None):
        """Process: periodic audit-and-repair sweep."""
        sim = self.storm.sim
        deadline = None if duration is None else sim.now + duration
        while not self.stopped and (deadline is None or sim.now < deadline):
            yield sim.timeout(interval)
            self.repair()
        return self.repairs

    def stop(self) -> None:
        self.stopped = True


def list_invariants() -> str:
    width = max(len(key) for key, _ in INVARIANTS)
    return "\n".join(f"{key:<{width}}  {text}" for key, text in INVARIANTS)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.reconcile",
        description="StorM control-plane reconciler (audit invariants)",
    )
    parser.add_argument(
        "--list-invariants",
        action="store_true",
        help="print the invariants the reconciler audits and exit",
    )
    args = parser.parse_args(argv)
    if args.list_invariants:
        print(list_invariants())
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
