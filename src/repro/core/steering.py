"""SDN flow steering (paper §III-A, Fig. 3).

Chains are composed from forwarding units {previous hop, middle-box,
next hop}: at each emitting hop's virtual switch, a rule matching the
flow's (src MAC, dst MAC, ports) rewrites the destination MAC to the
next middle-box, then falls through to L2 forwarding.  The same rule
set serves all relay modes: in active-relay mode, the reverse-path
rules simply never match (each split connection's replies are
addressed to their own previous hop directly).

During an atomic attach the source port is not yet known, so the
rules are first installed with the port wildcarded (safe under the
attach mutex) and *narrowed* to the attributed 4-tuple afterwards.

Rule swaps (narrowing, chain reconfiguration) are **make-before-break**
via *generations*: the replacement rule set is installed first, under a
generation-suffixed cookie (``<cookie>#g<n>``) and at a generation-
bumped priority so it shadows its predecessor, and only then is the old
generation retired.  At every step boundary of a transactional control
operation the flow therefore has a complete rule set installed — a
controller crash between ``stage`` and ``retire`` leaves two shadowed
generations (repaired by recovery or the reconciler), never a window
where traffic bypasses the chain or blackholes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.middlebox import MiddleBox
from repro.core.splicing import GatewayPair
from repro.iscsi.pdu import ISCSI_PORT
from repro.net.sdn import SdnController
from repro.net.switch import Drop, FlowRule, ModDstMac

WILDCARD_PRIORITY = 10
NARROWED_PRIORITY = 20
#: fail-closed quiesce rules sit above every steering generation
QUIESCE_PRIORITY = 10_000

_KEEP = object()


def _ovs_name(host_name: str) -> str:
    return f"ovs-{host_name}"


def build_chain_rules(
    gateways: GatewayPair,
    middleboxes: list[MiddleBox],
    cookie: str,
    src_port: Optional[int] = None,
    service_port: int = ISCSI_PORT,
    generation: int = 0,
) -> list[tuple[str, FlowRule]]:
    """Fig. 3 rule set for one flow through ``middleboxes`` in order."""
    if not middleboxes:
        return []
    base = NARROWED_PRIORITY if src_port is not None else WILDCARD_PRIORITY
    priority = base + generation
    ingress_mac = gateways.ingress.instance_mac
    egress_mac = gateways.egress.instance_mac
    rules: list[tuple[str, FlowRule]] = []

    # forward path: ingress -> mb1 -> ... -> mbN -> egress
    prev_mac = ingress_mac
    prev_switch = _ovs_name(gateways.ingress.host_name)
    for mb in middleboxes:
        rules.append(
            (
                prev_switch,
                FlowRule(
                    priority=priority,
                    src_mac=prev_mac,
                    dst_mac=egress_mac,
                    src_port=src_port,
                    dst_port=service_port,
                    actions=[ModDstMac(mb.mac)],
                    cookie=cookie,
                ),
            )
        )
        prev_mac = mb.mac
        prev_switch = _ovs_name(mb.host_name)

    # reverse path: egress -> mbN -> ... -> mb1 -> ingress
    prev_mac = egress_mac
    prev_switch = _ovs_name(gateways.egress.host_name)
    for mb in reversed(middleboxes):
        rules.append(
            (
                prev_switch,
                FlowRule(
                    priority=priority,
                    src_mac=prev_mac,
                    dst_mac=ingress_mac,
                    src_port=service_port,
                    dst_port=src_port,
                    actions=[ModDstMac(mb.mac)],
                    cookie=cookie,
                ),
            )
        )
        prev_mac = mb.mac
        prev_switch = _ovs_name(mb.host_name)

    return rules


@dataclass
class SteeringChain:
    """Installed steering state for one flow, with narrow/teardown.

    ``cookie`` names the whole *family* of rules for the flow:
    generation ``0`` uses the bare cookie, later generations append
    ``#g<n>``, and fail-closed quiesce rules append ``#quiesce`` —
    :meth:`remove` tears the entire family down in one call.
    """

    sdn: SdnController
    gateways: GatewayPair
    middleboxes: list[MiddleBox]
    cookie: str
    src_port: Optional[int] = None
    service_port: int = ISCSI_PORT
    installed: bool = field(default=False)
    generation: int = field(default=0)
    quiesced: bool = field(default=False)

    def _gen_cookie(self, generation: int) -> str:
        return self.cookie if generation == 0 else f"{self.cookie}#g{generation}"

    @property
    def active_cookie(self) -> str:
        """Cookie of the currently authoritative rule generation."""
        return self._gen_cookie(self.generation)

    def expected_rule_count(self) -> int:
        """Rules the active generation must have installed (audited by
        the reconciler): one per direction per middle-box."""
        return 2 * len(self.middleboxes)

    def install(self, src_port: Optional[int] = None) -> int:
        """Install the active generation (wildcard if ``src_port`` is
        None).  Idempotent: a crash-replayed install first removes any
        partial rule set of the same generation."""
        self.src_port = src_port
        self.sdn.remove_by_cookie(self.active_cookie, family=False)
        rules = build_chain_rules(
            self.gateways,
            self.middleboxes,
            self.active_cookie,
            src_port,
            self.service_port,
            generation=self.generation,
        )
        for switch_name, rule in rules:
            self.sdn.install_rule(switch_name, rule)
        self.installed = True
        return len(rules)

    # -- make-before-break swaps -------------------------------------------

    def stage(
        self,
        middleboxes: Optional[list[MiddleBox]] = None,
        src_port=_KEEP,
    ) -> int:
        """Install the *next* rule generation alongside the current one
        and return the retired generation number (pass it to
        :meth:`retire` once the new rules are live).  The new
        generation's bumped priority shadows the old rules immediately,
        so there is no instant at which the flow has no chain."""
        retired = self.generation
        self.generation += 1
        # Generation bump: any express-promoted flow must fall back to
        # packet mode before the shadowing rule set goes live (the SDN
        # controller also notifies per rule; this marks the semantic
        # boundary with the flow cookie for the demotion reason).
        if self.sdn.express_notify is not None:
            self.sdn.express_notify(f"steer-generation:{self.active_cookie}")
        if middleboxes is not None:
            self.middleboxes = list(middleboxes)
        self.install(self.src_port if src_port is _KEEP else src_port)
        return retired

    def unstage(self, retired: int, middleboxes: list[MiddleBox]) -> None:
        """Compensation for :meth:`stage`: drop the staged generation
        and make ``retired`` (with its middle-box list) current again."""
        self.sdn.remove_by_cookie(self.active_cookie, family=False)
        self.generation = retired
        self.middleboxes = list(middleboxes)

    def retire(self, generation: int) -> int:
        """Remove one retired rule generation (idempotent)."""
        return self.sdn.remove_by_cookie(self._gen_cookie(generation), family=False)

    def narrow(self, src_port: int) -> None:
        """Replace wildcard rules with 4-tuple rules, make-before-break."""
        self.retire(self.stage(src_port=src_port))

    def reconfigure(self, middleboxes: list[MiddleBox]) -> None:
        """Swap the middle-box chain of an existing flow (paper §III-A,
        on-demand scaling).  Only valid for forwarding-mode chains —
        active relays hold per-flow TCP state that cannot be migrated."""
        self.retire(self.stage(middleboxes=middleboxes))

    # -- fail-closed quiesce ----------------------------------------------

    def quiesce(self) -> None:
        """Block the flow in both directions (watchdog fail-closed
        policy): high-priority drop rules at the ingress gateway's
        switch, which both the upstream and the reply path traverse."""
        if self.quiesced:
            return
        switch = _ovs_name(self.gateways.ingress.host_name)
        cookie = f"{self.cookie}#quiesce"
        for src_port, dst_port in (
            (self.src_port, self.service_port),
            (self.service_port, self.src_port),
        ):
            self.sdn.install_rule(
                switch,
                FlowRule(
                    priority=QUIESCE_PRIORITY,
                    src_port=src_port,
                    dst_port=dst_port,
                    actions=[Drop()],
                    cookie=cookie,
                ),
            )
        self.quiesced = True

    def unquiesce(self) -> int:
        """Lift a quiesce; established TCP retransmits resume the flow."""
        removed = self.sdn.remove_by_cookie(f"{self.cookie}#quiesce", family=False)
        self.quiesced = False
        return removed

    def remove(self) -> int:
        """Tear down the whole cookie family: every generation plus any
        quiesce rules.  Idempotent."""
        removed = self.sdn.remove_by_cookie(self.cookie, family=True)
        self.installed = False
        self.quiesced = False
        return removed
