"""SDN flow steering (paper §III-A, Fig. 3).

Chains are composed from forwarding units {previous hop, middle-box,
next hop}: at each emitting hop's virtual switch, a rule matching the
flow's (src MAC, dst MAC, ports) rewrites the destination MAC to the
next middle-box, then falls through to L2 forwarding.  The same rule
set serves all relay modes: in active-relay mode, the reverse-path
rules simply never match (each split connection's replies are
addressed to their own previous hop directly).

During an atomic attach the source port is not yet known, so the
rules are first installed with the port wildcarded (safe under the
attach mutex) and *narrowed* to the attributed 4-tuple afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.middlebox import MiddleBox
from repro.core.splicing import GatewayPair
from repro.iscsi.pdu import ISCSI_PORT
from repro.net.sdn import SdnController
from repro.net.switch import FlowRule, ModDstMac

WILDCARD_PRIORITY = 10
NARROWED_PRIORITY = 20


def _ovs_name(host_name: str) -> str:
    return f"ovs-{host_name}"


def build_chain_rules(
    gateways: GatewayPair,
    middleboxes: list[MiddleBox],
    cookie: str,
    src_port: Optional[int] = None,
    service_port: int = ISCSI_PORT,
) -> list[tuple[str, FlowRule]]:
    """Fig. 3 rule set for one flow through ``middleboxes`` in order."""
    if not middleboxes:
        return []
    priority = NARROWED_PRIORITY if src_port is not None else WILDCARD_PRIORITY
    ingress_mac = gateways.ingress.instance_mac
    egress_mac = gateways.egress.instance_mac
    rules: list[tuple[str, FlowRule]] = []

    # forward path: ingress -> mb1 -> ... -> mbN -> egress
    prev_mac = ingress_mac
    prev_switch = _ovs_name(gateways.ingress.host_name)
    for mb in middleboxes:
        rules.append(
            (
                prev_switch,
                FlowRule(
                    priority=priority,
                    src_mac=prev_mac,
                    dst_mac=egress_mac,
                    src_port=src_port,
                    dst_port=service_port,
                    actions=[ModDstMac(mb.mac)],
                    cookie=cookie,
                ),
            )
        )
        prev_mac = mb.mac
        prev_switch = _ovs_name(mb.host_name)

    # reverse path: egress -> mbN -> ... -> mb1 -> ingress
    prev_mac = egress_mac
    prev_switch = _ovs_name(gateways.egress.host_name)
    for mb in reversed(middleboxes):
        rules.append(
            (
                prev_switch,
                FlowRule(
                    priority=priority,
                    src_mac=prev_mac,
                    dst_mac=ingress_mac,
                    src_port=service_port,
                    dst_port=src_port,
                    actions=[ModDstMac(mb.mac)],
                    cookie=cookie,
                ),
            )
        )
        prev_mac = mb.mac
        prev_switch = _ovs_name(mb.host_name)

    return rules


@dataclass
class SteeringChain:
    """Installed steering state for one flow, with narrow/teardown."""

    sdn: SdnController
    gateways: GatewayPair
    middleboxes: list[MiddleBox]
    cookie: str
    src_port: Optional[int] = None
    service_port: int = ISCSI_PORT
    installed: bool = field(default=False)

    def install(self, src_port: Optional[int] = None) -> int:
        """Install rules (wildcard if ``src_port`` is None)."""
        self.src_port = src_port
        rules = build_chain_rules(
            self.gateways, self.middleboxes, self.cookie, src_port, self.service_port
        )
        for switch_name, rule in rules:
            self.sdn.install_rule(switch_name, rule)
        self.installed = True
        return len(rules)

    def narrow(self, src_port: int) -> None:
        """Replace wildcard rules with 4-tuple rules, atomically."""
        self.remove()
        self.install(src_port)

    def remove(self) -> int:
        removed = self.sdn.remove_by_cookie(self.cookie)
        self.installed = False
        return removed

    def reconfigure(self, middleboxes: list[MiddleBox]) -> None:
        """Swap the middle-box chain of an existing flow (paper §III-A,
        on-demand scaling).  Only valid for forwarding-mode chains —
        active relays hold per-flow TCP state that cannot be migrated."""
        self.remove()
        self.middleboxes = list(middleboxes)
        self.install(self.src_port)
