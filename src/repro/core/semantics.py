"""Semantics reconstruction (paper §III-C).

Middle-boxes observe raw block-level accesses; tenants think in files
and directories.  The :class:`SemanticsEngine` bridges the gap: it
starts from the dumpe2fs-style :class:`~repro.fs.view.FilesystemView`
taken at attach time, and keeps it current by parsing every metadata
*write* it sees (inode tables, directory blocks, indirect blocks).
Data accesses are then reported against the live block→file map.

Blocks written before their owning inode is known (data flushed ahead
of metadata) are remembered and *reconciled* retroactively once
ownership appears — so the log converges to the correct file
attribution, like the paper's monitoring engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.fs.directory import unpack_dirents
from repro.fs.inode import MODE_DIR, MODE_FREE, unpack_indirect_block, unpack_inode_table_block
from repro.fs.layout import BLOCK_SIZE
from repro.fs.view import BlockClass, FilesystemView

#: cap on each side cache below: a hostile tenant spraying writes over
#: never-classified blocks must not grow the engine without bound.
#: Oldest-inserted entries are evicted first (dict order); an evicted
#: block simply stays "unknown" if its metadata shows up much later.
CACHE_CAP = 1024


def _evict_oldest(cache: dict, cap: int = CACHE_CAP) -> None:
    while len(cache) > cap:
        del cache[next(iter(cache))]


@dataclass
class AccessRecord:
    """One reconstructed access, shaped like a Table I row."""

    access_id: int
    op: str  # "read" | "write"
    block_no: int
    block_count: int
    length: int
    category: str  # "file" | "directory" | "metadata" | "unknown"
    description: str
    ino: Optional[int] = None
    when: float = 0.0

    def as_row(self) -> tuple:
        return (self.access_id, self.op, self.description, self.length)


class SemanticsEngine:
    """Classification → Update → (record) pipeline over block accesses."""

    def __init__(self, view: FilesystemView):
        self.view = view
        self.records: list[AccessRecord] = []
        self._ids = itertools.count(1)
        #: last payload written to still-unclassified blocks, so they can
        #: be parsed once their role becomes known
        self._unclassified_writes: dict[int, bytes] = {}
        #: records waiting for ownership information, by block number
        self._pending_records: dict[int, list[AccessRecord]] = {}
        #: last seen dirent content per directory block
        self._dir_block_cache: dict[int, list] = {}
        #: called with each record whose classification was fixed up
        #: retroactively — consumers (e.g. the monitor's analysis
        #: phase) re-examine it against their policies
        self.reconcile_hooks: list = []

    # -- main entry point ---------------------------------------------------

    def observe(
        self,
        op: str,
        offset: int,
        length: int,
        data: Optional[bytes] = None,
        when: float = 0.0,
    ) -> list[AccessRecord]:
        """Feed one block-level access; returns the records it produced."""
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise ValueError("block accesses must be 4 KiB aligned")
        first_block = offset // BLOCK_SIZE
        block_count = length // BLOCK_SIZE
        if op == "write":
            for i in range(block_count):
                chunk = None
                if data is not None:
                    chunk = data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
                self._update_phase(first_block + i, chunk)
        produced = self._classify_and_record(op, first_block, block_count, when)
        self.records.extend(produced)
        return produced

    # -- update phase: parse metadata writes into the view ---------------------

    def _update_phase(self, block_no: int, data: Optional[bytes]) -> None:
        block_class = self.view.classify(block_no)
        if data is None:
            return
        if block_class is BlockClass.INODE_TABLE:
            self._apply_inode_table_write(block_no, data)
        elif block_class is BlockClass.DIRECTORY:
            owner = self.view.owner_of(block_no)
            if owner is not None:
                self.view.set_directory_entries(owner.ino, self._all_dir_entries(owner.ino, block_no, data))
        elif block_class is BlockClass.INDIRECT:
            owner = self.view.owner_of(block_no)
            if owner is not None:
                self.view.record_indirect_pointers(owner.ino, unpack_indirect_block(data))
                self._reconcile()
        elif block_class is BlockClass.UNKNOWN:
            # might turn out to be a new directory/indirect/data block —
            # keep the payload for later reconciliation
            self._unclassified_writes[block_no] = data
            _evict_oldest(self._unclassified_writes)

    def _all_dir_entries(self, dir_ino: int, written_block: int, data: bytes) -> list:
        """Entries of the whole directory, with one block's new content."""
        inode = self.view.inodes.get(dir_ino)
        entries = []
        blocks = []
        if inode is not None:
            blocks = [b for b in inode.direct if b]
        if written_block not in blocks:
            blocks.append(written_block)
        for block in blocks:
            if block == written_block:
                entries.extend(unpack_dirents(data, best_effort=True))
            else:
                cached = self._dir_block_cache.get(block)
                if cached is not None:
                    entries.extend(cached)
        self._dir_block_cache[written_block] = unpack_dirents(data, best_effort=True)
        _evict_oldest(self._dir_block_cache)
        return entries

    def _apply_inode_table_write(self, block_no: int, data: bytes) -> None:
        first_ino = self.view.sb.first_inode_of_table_block(block_no)
        for index, inode in enumerate(unpack_inode_table_block(data)):
            ino = first_ino + index
            previous = self.view.inodes.get(ino)
            if inode.mode == MODE_FREE:
                if previous is not None:
                    self.view.forget_inode(ino)
                continue
            if previous is not None and previous.pack() == inode.pack():
                continue
            self.view.record_inode(ino, inode)
            # a block we saw written blind may now be this inode's
            if inode.mode == MODE_DIR:
                for block in inode.direct:
                    raw = self._unclassified_writes.pop(block, None)
                    if raw is not None:
                        self.view.set_directory_entries(
                            ino, self._all_dir_entries(ino, block, raw)
                        )
            if inode.indirect:
                raw = self._unclassified_writes.pop(inode.indirect, None)
                if raw is not None:
                    self.view.record_indirect_pointers(ino, unpack_indirect_block(raw))
        self._reconcile()

    # -- classification phase ----------------------------------------------------

    def _classify_and_record(
        self, op: str, first_block: int, block_count: int, when: float
    ) -> list[AccessRecord]:
        records: list[AccessRecord] = []
        run_start = None
        run_key = None

        def flush_run(end_block: int) -> None:
            nonlocal run_start, run_key
            if run_start is None:
                return
            count = end_block - run_start
            category, description, ino = run_key
            record = AccessRecord(
                access_id=next(self._ids),
                op=op,
                block_no=run_start,
                block_count=count,
                length=count * BLOCK_SIZE,
                category=category,
                description=description,
                ino=ino,
                when=when,
            )
            if category == "unknown":
                self._pending_records.setdefault(run_start, []).append(record)
                _evict_oldest(self._pending_records)
            records.append(record)
            run_start = None
            run_key = None

        for block in range(first_block, first_block + block_count):
            key = self._describe_block(block)
            if run_key is None:
                run_start, run_key = block, key
            elif key != run_key:
                flush_run(block)
                run_start, run_key = block, key
        flush_run(first_block + block_count)
        return records

    def _describe_block(self, block_no: int) -> tuple[str, str, Optional[int]]:
        block_class = self.view.classify(block_no)
        sb = self.view.sb
        if block_class is BlockClass.SUPERBLOCK:
            return ("metadata", "META: superblock", None)
        if block_class is BlockClass.BLOCK_BITMAP:
            return ("metadata", f"META: block_bitmap_{sb.group_of_block(block_no)}", None)
        if block_class is BlockClass.INODE_BITMAP:
            return ("metadata", f"META: inode_bitmap_{sb.group_of_block(block_no)}", None)
        if block_class is BlockClass.INODE_TABLE:
            group = sb.group_of_block(block_no)
            index = block_no - sb.inode_table_start(group)
            table_id = group * sb.inode_table_blocks + index
            return ("metadata", f"META: inode_group_{table_id}", None)
        if block_class is BlockClass.INDIRECT:
            owner = self.view.owner_of(block_no)
            path = self.view.display_path(owner.ino) if owner else "?"
            return ("metadata", f"META: indirect_of_{path}", owner.ino if owner else None)
        if block_class is BlockClass.DIRECTORY:
            owner = self.view.owner_of(block_no)
            path = self.view.display_path(owner.ino)
            suffix = "/." if not path.endswith("/") else "."
            return ("directory", f"{path}{suffix}", owner.ino)
        if block_class is BlockClass.DATA:
            owner = self.view.owner_of(block_no)
            return ("file", self.view.display_path(owner.ino), owner.ino)
        return ("unknown", f"UNKNOWN: block_{block_no}", None)

    # -- reconciliation ------------------------------------------------------------

    def _reconcile(self) -> None:
        """Re-describe previously unknown accesses once ownership appears."""
        for block_no in list(self._pending_records):
            category, description, ino = self._describe_block(block_no)
            if category == "unknown":
                continue
            for record in self._pending_records.pop(block_no):
                record.category = category
                record.description = description
                record.ino = ino
                for hook in self.reconcile_hooks:
                    hook(record)

    # -- convenience for tests/benchmarks -----------------------------------------

    def log_rows(self) -> list[tuple]:
        return [record.as_row() for record in self.records]
