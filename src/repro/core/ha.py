"""HA control plane: replicated intent log + deterministic failover.

PR 3 made every control operation a crash-replayable saga, but the
intent log lived on a *single* :class:`~repro.core.saga.ControlPlaneNode`
— kill it and no attach, detach, heal, or reconfigure can make
progress until it restarts.  This module removes that single point of
truth, following the argument Stratos makes for middle-box clouds
generally: chains keep forwarding while the brain is down, so the
orchestration layer must itself tolerate failures and be able to
rebuild its state from the data plane.

:class:`HaCluster` runs two-plus controller replicas with:

- **Deterministic leader election** (Raft-shaped): term numbers,
  per-replica randomized election timeouts drawn from named
  :class:`~repro.sim.rng.SeededRNG` child streams (stormlint-clean),
  and an election restriction — a replica only grants its vote to a
  candidate whose replicated log is at least as long as its own, so a
  new leader is guaranteed to hold every quorum-acknowledged entry.
  Heartbeats and votes travel as real packets over real simulated
  :class:`~repro.net.link.Link`\\ s between the replicas, so
  control-plane partitions and link latency genuinely delay failover.

- **Synchronous intent-log shipping**: every saga journal entry is
  replicated to a quorum of reachable replicas *before* the step it
  records executes (the :class:`~repro.core.saga.Saga` journal hook
  calls :meth:`HaCluster.ship_mark` from inside ``mark``).  If the
  quorum is unreachable the entry does not commit: the leader steps
  down and the executor sees :class:`~repro.core.saga.QuorumLost`
  (a :class:`~repro.core.saga.ControllerCrashed`), leaving the saga
  in-flight for the next leader's takeover.  Replication acks are
  modeled synchronously — control ops in this repo are synchronous
  method calls — so the per-follower ack round-trip is charged to the
  ``ha.ship.lag`` histogram rather than the simulation clock, while
  *reachability* (crashes, partitions, downed links) gates acks for
  real and failover detection is genuinely clock-driven.

- **Takeover**: on winning an election the new leader adopts every
  in-flight saga in its replicated log — re-stamping it with the new
  term — and resolves it exactly as single-node recovery does: roll
  *forward* past the pivot step, compensate before it.  Resolution
  reads the saga's live journal (the shared object models the new
  leader inspecting actual switch/NAT state), which can only exceed
  the quorum-acknowledged journal by the unacknowledged tail; undo
  closures tolerate both unexecuted and partially-applied steps, so
  every divergence still lands on one of the two audited outcomes.

- **Rebuild from switch tables**: if the *entire* replicated log is
  lost (:meth:`lose_intent_log`), the leader starts a fresh
  :class:`~repro.core.saga.IntentLog` and runs a
  :class:`~repro.core.reconcile.Reconciler` repair sweep — the switch
  and NAT tables are the ground truth from which transient artifacts
  of the lost in-flight sagas are swept and committed flows' rule
  sets are re-completed.

- **Compaction**: resolved sagas are snapshotted out of the logs
  (:meth:`ReplicaLog.compact`, :meth:`~repro.core.saga.IntentLog.compact`)
  so crash replay and follower catch-up are O(active sagas).

All of it defaults off: ``StorM(..., ha=False)`` builds none of this
and stays bit-identical to the single-node platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.core.saga import (
    ABORTED,
    ControlPlaneNode,
    IntentLog,
    QuorumLost,
    Saga,
)
from repro.net.link import Interface, Link
from repro.net.packet import HEADER_BYTES, Packet
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:
    from repro.core.platform import StorM

#: Replica roles (Raft nomenclature).
FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Wire size of one control message (header + term/index/kind fields).
_HA_MESSAGE_BYTES = HEADER_BYTES + 24


@dataclass
class HaConfig:
    """Knobs for the replicated control plane."""

    #: number of ControlPlaneNode replicas (>= 1; 1 degenerates to the
    #: single-node PR 3 behavior, just with the shipping plumbing on)
    replicas: int = 3
    #: acks (including the leader's own) required to commit a journal
    #: entry; ``None`` = majority of replicas
    quorum: Optional[int] = None
    #: leader heartbeat period; also the replica state-machine tick
    heartbeat_interval: float = 0.05
    #: base election timeout — a follower that hears no heartbeat for
    #: ``election_timeout + U(0, election_jitter)`` starts an election
    election_timeout: float = 0.15
    election_jitter: float = 0.1
    #: replication-link overrides; ``None`` = the cloud's
    #: ``control_link_latency`` / ``control_link_bandwidth`` params
    link_latency: Optional[float] = None
    link_bandwidth: Optional[float] = None
    #: seed for the per-replica timeout jitter streams
    seed: int = 0
    #: auto-compact the logs once this many sagas resolve
    compact_threshold: int = 64


@dataclass
class HaMessage:
    """One control-plane packet payload (heartbeat / vote traffic)."""

    kind: str  # "heartbeat" | "vote-request" | "vote-grant"
    term: int
    sender: str
    log_index: int = 0


@dataclass
class ReplicaSagaRecord:
    """One saga's shipped journal as a replica sees it.

    ``saga`` references the shared live object (replicas replicate the
    *journal*; the object graph stands in for the serialized form), and
    ``journal`` is the prefix of its journal this replica has acked.
    """

    saga: Saga
    journal: list[str] = field(default_factory=list)


class ReplicaLog:
    """One replica's copy of the shipped intent log."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        #: index of the last shipped entry this replica acknowledged
        #: (the election restriction compares these)
        self.last_index = 0
        #: saga_id -> record, insertion-ordered
        self.records: dict[int, ReplicaSagaRecord] = {}
        #: resolved sagas dropped by compaction (bookkeeping only)
        self.compacted = 0

    def apply(self, index: int, saga: Saga, entry: str) -> None:
        record = self.records.get(saga.saga_id)
        if record is None:
            record = ReplicaSagaRecord(saga)
            self.records[saga.saga_id] = record
        record.journal.append(entry)
        self.last_index = index

    def unapply(self, index: int, saga: Saga) -> None:
        """Abort-undo of :meth:`apply` for a quorum-failed ship: drop
        the entry (and the whole record, if it was the first) so a
        failed synchronous ship leaves no trace in any replica's log —
        logs only ever contain quorum-acknowledged entries, which is
        what the election restriction compares."""
        record = self.records.get(saga.saga_id)
        if record is not None and record.journal:
            record.journal.pop()
            if not record.journal:
                del self.records[saga.saga_id]
        self.last_index = index - 1

    def active(self) -> list[ReplicaSagaRecord]:
        """Records of sagas not yet resolved (commit/abort unshipped)."""
        return [r for r in self.records.values() if r.saga.incomplete]

    def resolved_count(self) -> int:
        return sum(1 for r in self.records.values() if not r.saga.incomplete)

    def compact(self) -> int:
        """Snapshot resolved sagas out of the log; O(active) remains."""
        resolved = [
            saga_id for saga_id, r in self.records.items() if not r.saga.incomplete
        ]
        for saga_id in resolved:
            del self.records[saga_id]
        self.compacted += len(resolved)
        return len(resolved)

    def install_snapshot(self, source: "ReplicaLog") -> int:
        """Catch up from ``source`` in O(active sagas): replace our
        records with copies of the source's *active* records and jump
        to its index.  Resolved history is not re-shipped (it is
        exactly what compaction drops)."""
        skipped = source.last_index - self.last_index
        self.compacted += self.resolved_count()
        self.records = {
            record.saga.saga_id: ReplicaSagaRecord(record.saga, list(record.journal))
            for record in source.active()
        }
        self.last_index = source.last_index
        return skipped

    def wipe(self) -> None:
        """Total log loss (fault injection): drop every record."""
        self.records.clear()


class HaCluster:
    """Two-plus controller replicas with leader election, synchronous
    quorum log shipping, saga takeover, and rebuild-from-switch-tables.

    Replica 0 is seated as the leader of term 1 at construction, so
    control operations issued synchronously at t=0 (before any sim
    events run) work exactly as on the single-node platform; elections
    only happen on failover.  Call :meth:`start` to spawn the per-node
    heartbeat/election loops (needed for any failover scenario), and
    drive the simulation with ``sim.run(until=<horizon>)`` — the loops
    are immortal, so a bare ``run()`` would never drain.
    """

    def __init__(self, storm: "StorM", config: Optional[HaConfig] = None) -> None:
        self.storm = storm
        self.sim = storm.sim
        self.config = config or HaConfig()
        if self.config.replicas < 1:
            raise ValueError("ha needs at least one control-plane replica")
        majority = self.config.replicas // 2 + 1
        self.quorum = self.config.quorum if self.config.quorum is not None else majority
        if not 1 <= self.quorum <= self.config.replicas:
            raise ValueError(
                f"quorum {self.quorum} impossible with {self.config.replicas} replicas"
            )
        self.rng = SeededRNG(self.config.seed, name="ha")
        self.event_log = storm.event_log
        self.stopped = False
        self.elections = 0
        self.term = 1
        self._log_lost = False
        self._global_index = 0
        self._resolved_since_compact = 0

        #: the replicas, in index order (cp-0 boots as leader)
        self.nodes: list[ControlPlaneNode] = []
        self.logs: dict[str, ReplicaLog] = {}
        #: per-replica state machines, keyed by node name
        self._roles: dict[str, str] = {}
        self._terms: dict[str, int] = {}
        self._voted: dict[str, tuple[int, str]] = {}
        self._grants: dict[str, int] = {}
        self._last_heartbeat: dict[str, float] = {}
        self._timeout: dict[str, float] = {}
        self._timeout_rng: dict[str, SeededRNG] = {}
        #: (owner name, peer name) -> owner's NIC towards the peer
        self._ifaces: dict[tuple[str, str], Interface] = {}
        self._links: dict[tuple[str, str], Link] = {}

        for index in range(self.config.replicas):
            node = ControlPlaneNode(self.sim, name=f"storm-cp{index}")
            node.on_message = self._make_message_handler(node)
            node.on_restart = self._make_rejoin_handler(node)
            self.nodes.append(node)
            self.logs[node.name] = ReplicaLog(node.name)
            self._roles[node.name] = FOLLOWER
            self._terms[node.name] = 1
            self._grants[node.name] = 0
            self._last_heartbeat[node.name] = self.sim.now
            rng = self.rng.child(f"timeout:{node.name}")
            self._timeout_rng[node.name] = rng
            self._timeout[node.name] = self._draw_timeout(node.name)
        self._cable_replicas()

        self.leader_name: Optional[str] = self.nodes[0].name
        self._roles[self.leader_name] = LEADER
        self._update_gauges()

    # -- plumbing -----------------------------------------------------------

    def _cable_replicas(self) -> None:
        """Full-mesh replication links: one NIC per (replica, peer)
        pair, self-addressed MACs outside the cloud allocator so the
        data-plane address sequence is untouched."""
        for i, a in enumerate(self.nodes):
            for j in range(i + 1, len(self.nodes)):
                b = self.nodes[j]
                iface_a = Interface(f"{a.name}.ha{j}", mac=f"02:ha:{i:02x}:{j:02x}:aa")
                iface_b = Interface(f"{b.name}.ha{i}", mac=f"02:ha:{i:02x}:{j:02x}:bb")
                a.add_interface(iface_a)
                b.add_interface(iface_b)
                link = self.storm.cloud.cable_control(
                    iface_a,
                    iface_b,
                    bandwidth=self.config.link_bandwidth,
                    latency=self.config.link_latency,
                )
                self._ifaces[(a.name, b.name)] = iface_a
                self._ifaces[(b.name, a.name)] = iface_b
                self._links[(a.name, b.name)] = link

    def _draw_timeout(self, name: str) -> float:
        rng = self._timeout_rng[name]
        return self.config.election_timeout + rng.uniform(
            0.0, self.config.election_jitter
        )

    def node(self, name: str) -> ControlPlaneNode:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no control-plane replica named {name!r}")

    @property
    def leader_node(self) -> Optional[ControlPlaneNode]:
        return None if self.leader_name is None else self.node(self.leader_name)

    def link_between(self, a_name: str, b_name: str) -> Link:
        """The replication link between two replicas (for fault
        injection: flap it, down it, make it lossy)."""
        link = self._links.get((a_name, b_name)) or self._links.get((b_name, a_name))
        if link is None:
            raise KeyError(f"no replication link {a_name}<->{b_name}")
        return link

    def replication_links(self) -> Iterator[Link]:
        yield from self._links.values()

    def role(self, name: str) -> str:
        return self._roles[name]

    def _reachable(self, a: ControlPlaneNode, b: ControlPlaneNode) -> bool:
        """Can a message from ``a`` reach ``b`` right now?  Crashed
        endpoints, unplugged NICs, and downed links all say no — the
        same conditions that would drop the packet on the wire."""
        if a.crashed or b.crashed:
            return False
        iface = self._ifaces.get((a.name, b.name))
        if iface is None or iface.link is None:
            return False
        faults = iface.link.faults
        return faults is None or faults.up

    # -- observability ------------------------------------------------------

    @property
    def obs(self) -> Any:
        return getattr(self.storm, "obs", None)

    def _record(self, kind: str, target: str, **detail: Any) -> None:
        if self.event_log is not None:
            self.event_log.record(self.sim.now, kind, target, **detail)

    def _update_gauges(self) -> None:
        obs = self.obs
        if obs is None:
            return
        obs.metrics.gauge("ha.term").set(float(self.term))
        obs.metrics.gauge("ha.quorum").set(float(self.quorum))
        for node in self.nodes:
            leading = 1.0 if node.name == self.leader_name else 0.0
            obs.metrics.gauge("ha.leader", scope=node.name).set(leading)

    def _demote_express(self, reason: str) -> None:
        express = self.sim.express
        if express is not None:
            express.demote_all(reason)

    # -- messaging ----------------------------------------------------------

    def _make_message_handler(self, node: ControlPlaneNode) -> Any:
        def handler(payload: Any) -> None:
            if isinstance(payload, HaMessage):
                self._on_message(node, payload)

        return handler

    def _make_rejoin_handler(self, node: ControlPlaneNode) -> Any:
        def rejoin() -> None:
            self._on_rejoin(node)

        return rejoin

    def _send(self, src: ControlPlaneNode, dst_name: str, message: HaMessage) -> None:
        iface = self._ifaces.get((src.name, dst_name))
        if iface is None:
            return
        peer = self._ifaces[(dst_name, src.name)]
        packet = Packet(
            src_mac=iface.mac,
            dst_mac=peer.mac,
            src_ip=src.name,
            dst_ip=dst_name,
            src_port=0,
            dst_port=0,
            protocol="ha",
            size=_HA_MESSAGE_BYTES,
            payload=message,
        )
        iface.send(packet)  # drops silently if the NIC is unplugged

    def _broadcast(self, src: ControlPlaneNode, message: HaMessage) -> None:
        for peer in self.nodes:
            if peer is not src:
                self._send(src, peer.name, message)

    # -- the per-replica loop ----------------------------------------------

    def start(self, duration: Optional[float] = None) -> None:
        """Spawn one heartbeat/election loop per replica.  The loops
        run until :meth:`stop` (or ``duration`` elapses); while they
        live, drive the sim with ``run(until=...)``."""
        for node in self.nodes:
            self.sim.process(self._node_loop(node, duration))

    def stop(self) -> None:
        self.stopped = True

    def _node_loop(self, node: ControlPlaneNode, duration: Optional[float]) -> Any:
        deadline = None if duration is None else self.sim.now + duration
        name = node.name
        while not self.stopped and (deadline is None or self.sim.now < deadline):
            delay = self.config.heartbeat_interval
            if self._roles[name] != LEADER and not node.crashed:
                # wake at the exact timeout expiry, not the next tick:
                # the seeded jitter then genuinely staggers candidates
                # instead of being quantized away (split-vote avoidance)
                expiry = self._last_heartbeat[name] + self._timeout[name]
                remaining = expiry - self.sim.now
                if remaining < delay:
                    delay = max(remaining, self.config.heartbeat_interval / 8.0)
            yield self.sim.timeout(delay)
            if self.stopped or node.crashed:
                continue
            if self._roles[name] == LEADER:
                self._broadcast(
                    node,
                    HaMessage("heartbeat", self._terms[name], name,
                              self.logs[name].last_index),
                )
                self._catch_up_followers(node)
            else:
                elapsed = self.sim.now - self._last_heartbeat[name]
                if elapsed >= self._timeout[name]:
                    self._start_election(node)

    # -- election -----------------------------------------------------------

    def _start_election(self, node: ControlPlaneNode) -> None:
        name = node.name
        self._terms[name] += 1
        term = self._terms[name]
        self._roles[name] = CANDIDATE
        self._voted[name] = (term, name)
        self._grants[name] = 1  # own vote
        self._last_heartbeat[name] = self.sim.now
        self._timeout[name] = self._draw_timeout(name)
        self.elections += 1
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("ha.elections").inc()
        self._record("ha.elect", name, term=term, index=self.logs[name].last_index)
        if self._grants[name] >= self.quorum:  # single-replica cluster
            self._become_leader(node)
            return
        self._broadcast(
            node, HaMessage("vote-request", term, name, self.logs[name].last_index)
        )

    def _on_message(self, node: ControlPlaneNode, message: HaMessage) -> None:
        if self.stopped or node.crashed:
            return
        name = node.name
        if message.term > self._terms[name]:
            # a higher term always demotes: stale leaders and losing
            # candidates fall back to follower
            self._terms[name] = message.term
            if self._roles[name] == LEADER and self.leader_name == name:
                self._step_down(node, reason="higher-term")
            else:
                self._roles[name] = FOLLOWER
        if message.kind == "heartbeat":
            if message.term < self._terms[name]:
                return  # stale leader asserting a dead term
            self._roles[name] = FOLLOWER
            self._last_heartbeat[name] = self.sim.now
        elif message.kind == "vote-request":
            if message.term < self._terms[name]:
                return
            voted = self._voted.get(name)
            if voted is not None and voted[0] == message.term and voted[1] != message.sender:
                return  # one vote per term
            if message.log_index < self.logs[name].last_index:
                return  # election restriction: candidate's log is behind
            self._voted[name] = (message.term, message.sender)
            self._last_heartbeat[name] = self.sim.now
            self._send(
                node,
                message.sender,
                HaMessage("vote-grant", message.term, name, self.logs[name].last_index),
            )
        elif message.kind == "vote-grant":
            if self._roles[name] != CANDIDATE or message.term != self._terms[name]:
                return
            self._grants[name] += 1
            if self._grants[name] >= self.quorum:
                self._become_leader(node)

    def _become_leader(self, node: ControlPlaneNode) -> None:
        name = node.name
        self._roles[name] = LEADER
        previous = self.leader_name
        self.term = self._terms[name]
        self.leader_name = name
        self.storm.controller = node
        self._record("ha.leader", name, term=self.term, previous=previous or "")
        self._update_gauges()
        if previous != name:
            # the control plane moved: any compiled express path built
            # under the old leadership must re-validate in packet mode
            self._demote_express("ha-failover")
        self._broadcast(
            node, HaMessage("heartbeat", self.term, name, self.logs[name].last_index)
        )
        self._catch_up_followers(node)
        self._takeover(node)

    def _step_down(self, node: ControlPlaneNode, reason: str) -> None:
        name = node.name
        self._roles[name] = FOLLOWER
        self._last_heartbeat[name] = self.sim.now
        if self.leader_name == name:
            self.leader_name = None
            self._record("ha.quorum-lost", name, reason=reason)
            self._update_gauges()

    # -- log shipping -------------------------------------------------------

    def ship_begin(self, saga: Saga) -> None:
        """Replicate a saga's creation before any step runs.  On
        quorum failure the (side-effect-free) saga is aborted locally
        so it never masks reconciler audits as 'in flight'."""
        leader = self.leader_node
        if leader is None or leader.crashed:
            saga.status = ABORTED
            saga.journal.append("abort")
            raise QuorumLost(saga.op, "begin")
        saga.term = self.term
        saga.origin = leader.name
        saga.shipper = self.ship_mark
        try:
            self.ship_mark(saga, "begin")
        except QuorumLost:
            saga.status = ABORTED
            saga.journal.append("abort")
            saga.shipper = None
            raise

    def ship_mark(self, saga: Saga, entry: str) -> None:
        """Synchronously replicate one journal entry to a quorum.

        Raises :class:`QuorumLost` — and steps the leader down — when
        fewer than ``quorum`` replicas (including the leader) are
        reachable, or when the shipping saga no longer belongs to the
        current leadership (a deposed leader's stragglers must not
        commit through the new leader's log)."""
        leader = self.leader_node
        if leader is None or leader.crashed:
            raise QuorumLost(saga.op, entry)
        if saga.origin != leader.name or saga.term != self.term:
            raise QuorumLost(saga.op, entry)
        self._global_index += 1
        index = self._global_index
        leader_log = self.logs[leader.name]
        leader_log.apply(index, saga, entry)
        applied = [leader_log]
        obs = self.obs
        entry_rtt = 0.0
        for peer in self.nodes:
            if peer is leader or not self._reachable(leader, peer):
                continue
            peer_log = self.logs[peer.name]
            if peer_log.last_index < index - 1:
                self._catch_up(leader, peer)  # snapshot includes this entry
            else:
                peer_log.apply(index, saga, entry)
            applied.append(peer_log)
            link = self._ifaces[(leader.name, peer.name)].link
            rtt = 2.0 * link.latency if link is not None else 0.0
            if rtt > entry_rtt:
                entry_rtt = rtt
            if obs is not None:
                obs.metrics.histogram("ha.ship.lag").observe(rtt)
        # the synchronous ship waits for the slowest acked peer, so the
        # saga is charged that peer's round trip for this entry
        saga.ship_rtt += entry_rtt
        if obs is not None:
            obs.metrics.counter("ha.ship.entries").inc()
        if len(applied) < self.quorum:
            # the synchronous ship aborts: no copy keeps the entry, so
            # replica logs only ever hold quorum-acknowledged entries
            for log in applied:
                log.unapply(index, saga)
            self._global_index -= 1
            self._step_down(leader, reason="quorum-lost")
            raise QuorumLost(saga.op, entry)
        if entry in ("commit", "abort"):
            self._resolved_since_compact += 1
            if self._resolved_since_compact >= self.config.compact_threshold:
                self.compact()

    def _catch_up(self, leader: ControlPlaneNode, peer: ControlPlaneNode) -> None:
        skipped = self.logs[peer.name].install_snapshot(self.logs[leader.name])
        self._record("ha.catch-up", peer.name, skipped=skipped)
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("ha.ship.catchups").inc()

    def _catch_up_followers(self, leader: ControlPlaneNode) -> None:
        leader_log = self.logs[leader.name]
        for peer in self.nodes:
            if peer is leader or not self._reachable(leader, peer):
                continue
            if self.logs[peer.name].last_index < leader_log.last_index:
                self._catch_up(leader, peer)

    def compact(self) -> int:
        """Snapshot resolved sagas out of the logical intent log and
        every replica log; returns the count dropped from the leader's
        copy.  Local-only state surgery — always safe, any time."""
        dropped = 0
        log = self.storm.intent_log
        if log is not None:
            log.compact()
        for node in self.nodes:
            count = self.logs[node.name].compact()
            if node.name == self.leader_name:
                dropped = count
        self._resolved_since_compact = 0
        return dropped

    # -- takeover -----------------------------------------------------------

    def has_authority(self, saga: Saga) -> bool:
        """Does the cluster still stand behind this saga's executor?
        The saga executor probes this at every step boundary (via
        ``StorM._check_controller``); a leadership change, leader
        crash, or quorum loss revokes authority and the executor
        raises :class:`~repro.core.saga.ControllerCrashed`."""
        leader = self.leader_node
        return (
            leader is not None
            and not leader.crashed
            and saga.origin == leader.name
            and saga.term == self.term
        )

    def _takeover(self, node: ControlPlaneNode) -> None:
        """Adopt and resolve every in-flight saga in the new leader's
        replicated log: replay past the pivot, compensate before it —
        the single-node recovery semantics, quorum-shipped."""
        if self._log_lost:
            self.rebuild()
        log = self.logs[node.name]
        pending = [
            log.records[saga_id].saga
            for saga_id in sorted(log.records)
            if log.records[saga_id].saga.incomplete
        ]
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.span("saga.takeover", node=node.name, term=self.term,
                            pending=len(pending))
        replayed = rolled_back = 0
        for saga in pending:
            # adopt: the new leader commits the old leader's entries
            # under its own term (Raft's rule for inherited entries)
            saga.term = self.term
            saga.origin = node.name
            try:
                if saga.pivoted:
                    self.storm._replay_saga(saga)
                    replayed += 1
                    self._record("saga.replay", saga.cookie, op=saga.op, takeover=True)
                else:
                    self.storm._rollback_saga(saga)
                    rolled_back += 1
            except QuorumLost:
                # lost leadership mid-takeover; the next leader finishes
                break
            if span is not None:
                span.event("saga.takeover", target=saga.cookie,
                           resolution="replay" if saga.pivoted else "rollback")
        if span is not None:
            span.finish("ok")
        self._record(
            "ha.takeover", node.name, term=self.term,
            replayed=replayed, rolled_back=rolled_back,
        )

    # -- total log loss ------------------------------------------------------

    def lose_intent_log(self) -> None:
        """Fault: every replica's log is gone (correlated storage loss
        of the controller fleet).  If a healthy leader is seated it
        rebuilds immediately; otherwise the next elected leader does."""
        for node in self.nodes:
            self.logs[node.name].wipe()
        self._log_lost = True
        leader = self.leader_node
        if leader is not None and not leader.crashed:
            self.rebuild()

    def rebuild(self) -> int:
        """Reconstruct control-plane intent from the data plane: start
        a fresh intent log and run a reconciler repair sweep with the
        switch/NAT tables as ground truth.  Transient artifacts of the
        lost in-flight sagas (wildcard rules, attach NAT) are swept;
        committed flows keep — or get back — their full rule sets."""
        from repro.core.reconcile import Reconciler

        fresh = IntentLog()
        fresh.shipper = self
        self.storm.intent_log = fresh
        self._log_lost = False
        reconciler = Reconciler(self.storm, event_log=self.event_log)
        drifts = reconciler.repair()
        self._record("ha.log-rebuild", self.leader_name or "", drifts=len(drifts))
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("ha.rebuilds").inc()
        return len(drifts)

    # -- restart ------------------------------------------------------------

    def _on_rejoin(self, node: ControlPlaneNode) -> None:
        """A restarted replica rejoins as a follower of the current
        term; the leader's next heartbeat tick (or the next shipped
        entry) snapshots it back up to date."""
        name = node.name
        self._roles[name] = FOLLOWER
        self._terms[name] = max(self._terms[name], self.term)
        self._last_heartbeat[name] = self.sim.now
        self._timeout[name] = self._draw_timeout(name)
        self._record("ha.rejoin", name, term=self._terms[name])
