"""Deterministic fault injection for the simulated cloud.

Every fault — packet drop/corrupt/delay, link flap/partition, VM or
host crash/restart, disk I/O error — is drawn from a seeded RNG
(:class:`repro.sim.rng.SeededRNG` child streams, one per fault site)
or scheduled at an explicit simulated time, so a faulted run is a pure
function of its seed: run-twice identical, bisectable, and comparable
across code changes.  See DESIGN.md §8 for the fault model and the
recovery invariants the test suite pins.

Adversarial (hostile-tenant) actions ride the same injector: payload
tamper, PDU replay/reorder through a compromised relay
(:class:`repro.faults.injector.RelayAdversary`), unauthorized
chain bypass, and a seeded fuzzer aimed at the semantic monitor —
each recording ground truth so detection tests can assert exactness.
See DESIGN.md §14 for the threat model.
"""

from repro.faults.injector import FaultInjector, LinkFaults, RelayAdversary

__all__ = ["FaultInjector", "LinkFaults", "RelayAdversary"]
