"""The fault injector: seeded, schedulable, kernel-composable.

Design constraints, in order:

1. **Zero overhead when off.**  Components carry a ``None`` hook
   (``Link.faults``, ``Disk.fault_hook``) checked once per operation;
   nothing else changes on the fast path.
2. **Determinism.**  Every per-packet / per-I/O decision comes from a
   child RNG stream named after the fault site (link endpoints, disk
   name), so decisions do not depend on injector call order, and the
   same seed reproduces the same fault schedule bit-for-bit.
3. **Crash semantics.**  A crashed node keeps its Python objects (the
   disk contents, bound listeners, NAT/conntrack state model the
   machine's persistent state across a service restart) but loses its
   connections and its links: sockets are reset (RST on the wire for a
   fail-fast crash, silently for a power-loss crash) and interfaces
   are unplugged until :meth:`FaultInjector.restart`.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Optional

from repro.obs.eventlog import EventLog, make_event_log
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.tcp import ConnectionReset
from repro.sim import Simulator
from repro.sim.rng import SeededRNG


class LinkFaults:
    """Per-link fault state consulted by ``Link._pump`` per packet.

    :meth:`judge` returns a non-negative extra delay to deliver the
    packet, or a negative value to drop it.  Corruption is modeled as
    a checksum-failure drop (counted separately).
    """

    __slots__ = (
        "rng",
        "name",
        "up",
        "drop_prob",
        "corrupt_prob",
        "delay_prob",
        "delay_range",
        "match",
        "drop_next_count",
        "dropped",
        "corrupted",
        "delayed",
        "passed",
    )

    def __init__(self, rng: SeededRNG, name: str):
        self.rng = rng
        self.name = name
        self.up = True
        self.drop_prob = 0.0
        self.corrupt_prob = 0.0
        self.delay_prob = 0.0
        self.delay_range = (0.0005, 0.005)
        #: optional packet predicate restricting probabilistic faults
        #: to a flow (e.g. ``lambda p: p.src_port == 49160``)
        self.match: Optional[Callable[[Packet], bool]] = None
        self.drop_next_count = 0
        self.dropped = 0
        self.corrupted = 0
        self.delayed = 0
        self.passed = 0

    def judge(self, packet: Packet) -> float:
        if not self.up:
            self.dropped += 1
            return -1.0
        if self.match is not None and not self.match(packet):
            self.passed += 1
            return 0.0
        if self.drop_next_count > 0:
            self.drop_next_count -= 1
            self.dropped += 1
            return -1.0
        if self.drop_prob and self.rng.random() < self.drop_prob:
            self.dropped += 1
            return -1.0
        if self.corrupt_prob and self.rng.random() < self.corrupt_prob:
            self.corrupted += 1
            return -1.0  # bad checksum: the receiver discards it
        if self.delay_prob and self.rng.random() < self.delay_prob:
            self.delayed += 1
            return self.rng.uniform(*self.delay_range)
        self.passed += 1
        return 0.0


class RelayAdversary:
    """A compromised middle-box's egress hook (``relay.adversary``).

    Armed by the injector with bounded counters, consumed in PDU
    arrival order — the same run replays the same hostile schedule.
    Every *executed* action records ground truth: a ``tamper.*`` entry
    in the injector timeline plus a row in
    :attr:`FaultInjector.adversarial` whose ``kind`` matches the
    :class:`~repro.integrity.layer.Detection` kind the endpoint must
    raise — so tests assert detected-set == injected-set exactly.
    """

    def __init__(self, injector: "FaultInjector", middlebox: Any, rng: SeededRNG):
        self.injector = injector
        self.middlebox = middlebox
        self.rng = rng
        self.tamper_next = 0
        self.replay_next = 0
        self.reorder_next = 0
        #: whole-PDU holds awaiting release on the next egress
        self._held: list[tuple] = []
        self.tampered = 0
        self.replayed = 0
        self.reordered = 0

    # -- plumbing ------------------------------------------------------

    def _truth(self, kind: str, event: str, pdu: Any, **detail: Any) -> None:
        tag = getattr(pdu, "tag", None)
        flow = getattr(tag, "flow", "") or self.middlebox.name
        seq = getattr(tag, "seq", -1)
        self.injector.adversarial.append(
            {"kind": kind, "flow": flow, "seq": seq, "mb": self.middlebox.name}
        )
        self.injector._record(
            f"tamper.{event}", flow, mb=self.middlebox.name, seq=seq, **detail
        )

    @staticmethod
    def _send_quietly(socket: Any, pdu: Any) -> None:
        try:
            socket.send(pdu, pdu.wire_size)
        except ConnectionReset:
            pass

    def _after_current(self, action: Callable[[], None]) -> None:
        """Defer until after the relay's own send of the current PDU:
        a 0-delay event fires once the current callback completes, so
        injected PDUs land *behind* the triggering one in TCP order."""
        self.injector.sim.timeout(0).callbacks.append(lambda _event: action())

    # -- the egress hook (called by PassiveRelay / ActiveRelay) --------

    def on_egress(self, pdu: Any, direction: str, socket: Any, streamed: bool) -> Any:
        """Returns the PDU to send (possibly mutated), or None to hold
        it (whole-PDU active-relay path only)."""
        if self._held and self.reorder_next == 0:
            held, self._held = self._held, []

            def release() -> None:
                for held_pdu, held_socket in held:
                    self._send_quietly(held_socket, held_pdu)

            self._after_current(release)
        if self.reorder_next > 0 and not streamed and socket is not None:
            self.reorder_next -= 1
            self.reordered += 1
            self._held.append((pdu, socket))
            self._truth("reorder", "reorder", pdu)
            return None
        if self.tamper_next > 0 and getattr(pdu, "data", None):
            self.tamper_next -= 1
            self.tampered += 1
            data = pdu.data
            index = self.rng.randint(0, len(data) - 1)
            pdu.data = data[:index] + bytes([data[index] ^ 0xFF]) + data[index + 1 :]
            self._truth("tamper", "payload", pdu, index=index)
        if (
            self.replay_next > 0
            and socket is not None
            and getattr(pdu, "tag", None) is not None
        ):
            self.replay_next -= 1
            self.replayed += 1
            dup = copy.copy(pdu)
            self._truth("replay", "replay", pdu)
            self._after_current(lambda: self._send_quietly(socket, dup))
        return pdu

    def flush_held(self) -> None:
        """Release anything still held (ends a reorder experiment)."""
        held, self._held = self._held, []
        for held_pdu, held_socket in held:
            self._send_quietly(held_socket, held_pdu)


class FaultInjector:
    """Injects seeded/scheduled faults into a running simulation."""

    def __init__(self, sim: Simulator, seed: int = 0, log: Optional[EventLog] = None):
        self.sim = sim
        self.rng = SeededRNG(seed, name="faults")
        self.log = log if log is not None else make_event_log()
        #: ground truth of executed adversarial actions, in order:
        #: {"kind", "flow", "seq", "mb"} rows matching Detection kinds
        self.adversarial: list[dict] = []

    @property
    def events(self) -> EventLog:
        """The injector's timeline (alias kept for analysis scripts)."""
        return self.log

    def _record(self, kind: str, target: str, **detail: Any) -> None:
        self.log.record(self.sim.now, kind, target, **detail)

    def _demote_express(self, reason: str) -> None:
        """Any injected fault may touch a promoted flow's links or
        nodes: mandatory fallback to packet mode (lossless — the next
        segments simply take the packet path, where the fault applies)."""
        express = self.sim.express
        if express is not None:
            express.demote_all(reason)

    # -- scheduling -----------------------------------------------------

    def at(self, when: float, action: Callable, *args: Any) -> None:
        """Run ``action(*args)`` at absolute simulated time ``when``."""
        delay = when - self.sim.now
        if delay < 0:
            raise ValueError(f"cannot schedule in the past ({when} < {self.sim.now})")
        self.sim.timeout(delay).callbacks.append(lambda _event: action(*args))

    # -- packet faults ---------------------------------------------------

    def _link_name(self, link: Link) -> str:
        return f"{link.a.name}<->{link.b.name}"

    def _faults_for(self, link: Link) -> LinkFaults:
        if link.faults is None:
            name = self._link_name(link)
            link.faults = LinkFaults(self.rng.child(f"link:{name}"), name)
        return link.faults

    def lossy_link(
        self,
        link: Link,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay_prob: float = 0.0,
        delay_range: tuple[float, float] = (0.0005, 0.005),
        match: Optional[Callable[[Packet], bool]] = None,
    ) -> LinkFaults:
        """Make a link probabilistically drop/corrupt/delay packets."""
        self._demote_express("lossy-link")
        faults = self._faults_for(link)
        faults.drop_prob = drop
        faults.corrupt_prob = corrupt
        faults.delay_prob = delay_prob
        faults.delay_range = delay_range
        faults.match = match
        self._record(
            "fault.lossy-link", faults.name, drop=drop, corrupt=corrupt, delay=delay_prob
        )
        return faults

    def drop_next(self, link: Link, count: int = 1) -> None:
        """Deterministically drop the next ``count`` matching packets."""
        self._demote_express("drop-next")
        faults = self._faults_for(link)
        faults.drop_next_count += count
        self._record("fault.drop-next", faults.name, count=count)

    def clear_link(self, link: Link) -> None:
        """Remove all fault state from a link (restores the fast path)."""
        if link.faults is not None:
            self._demote_express("clear-link")
            self._record("fault.clear-link", link.faults.name)
            link.faults = None

    # -- link up/down -----------------------------------------------------

    def link_down(self, link: Link) -> None:
        faults = self._faults_for(link)
        if faults.up:
            self._demote_express("link-down")
            faults.up = False
            self._record("fault.link-down", faults.name)

    def link_up(self, link: Link) -> None:
        faults = self._faults_for(link)
        if not faults.up:
            self._demote_express("link-up")
            faults.up = True
            self._record("fault.link-up", faults.name)

    def flap_link(self, link: Link, down_at: float, down_for: float) -> None:
        """Schedule the link to go down at ``down_at`` for ``down_for``."""
        self.at(down_at, self.link_down, link)
        self.at(down_at + down_for, self.link_up, link)

    def partition(self, *nodes: Any) -> None:
        """Down every link attached to the given nodes."""
        for node in nodes:
            for iface in node.interfaces:
                if iface.link is not None:
                    self.link_down(iface.link)

    def heal_partition(self, *nodes: Any) -> None:
        for node in nodes:
            for iface in node.interfaces:
                if iface.link is not None:
                    self.link_up(iface.link)

    # -- control-plane faults (repro.core.ha clusters) ---------------------

    def control_partition(self, cluster: Any, *names: str) -> None:
        """Partition the named control-plane replicas from the rest of
        the cluster by downing their replication links.  ``names`` is
        one side of the split (e.g. the minority); the same seeded
        ``heal_partition``-style reversal is :meth:`heal_control_partition`.
        """
        nodes = [cluster.node(name) for name in names]
        self._record("fault.control-partition", ",".join(names))
        self.partition(*nodes)

    def heal_control_partition(self, cluster: Any, *names: str) -> None:
        nodes = [cluster.node(name) for name in names]
        self._record("fault.control-heal", ",".join(names))
        self.heal_partition(*nodes)

    def isolate_leader(self, cluster: Any) -> Any:
        """Split-brain injection: cut the current leader's replication
        links (the node itself stays up — it only loses its peers).
        Returns the isolated node (None if the cluster is leaderless).
        """
        leader = cluster.leader_node
        if leader is not None:
            self.control_partition(cluster, leader.name)
        return leader

    def crash_leader(self, cluster: Any, restart_after: Optional[float] = None,
                     silent: bool = False) -> Any:
        """Crash whichever replica currently leads the cluster.
        Returns the crashed node (None if leaderless)."""
        leader = cluster.leader_node
        if leader is not None:
            self.crash(leader, restart_after=restart_after, silent=silent)
        return leader

    def lose_intent_log(self, cluster: Any) -> None:
        """Total intent-log loss across every replica (correlated
        controller-fleet storage failure): the cluster must rebuild
        its state from the switch tables."""
        self._record("fault.log-loss", ",".join(n.name for n in cluster.nodes))
        cluster.lose_intent_log()

    # -- node crash / restart ---------------------------------------------

    def crash(
        self, node: Any, restart_after: Optional[float] = None, silent: bool = False
    ) -> None:
        """Crash a node (VM, middle-box, compute or storage host).

        Connections die: abortively with RST on the wire (fail-fast
        crash, the hypervisor/peer stack notices immediately) or
        *silently* (power loss — peers only find out via retransmission
        exhaustion).  Interfaces are unplugged; persistent state (disk
        contents, listener bindings, conntrack) survives for the
        restart.
        """
        if node.crashed:
            return
        self._demote_express("crash")
        node.crashed = True
        for socket in list(node.stack._sockets.values()):
            if silent:
                socket._enter_reset()
            else:
                socket.reset()
        for iface in node.interfaces:
            iface._saved_wiring = (iface.link, iface.owner)
            iface.link = None
            iface.owner = None
        self._record(
            "fault.crash", node.name, silent=silent, restart_after=restart_after
        )
        if restart_after is not None:
            self.at(self.sim.now + restart_after, self.restart, node)

    def restart(self, node: Any) -> None:
        """Re-plug a crashed node's interfaces and mark it healthy."""
        if not node.crashed:
            return
        self._demote_express("restart")
        for iface in node.interfaces:
            saved = getattr(iface, "_saved_wiring", None)
            if saved is not None:
                iface.link, iface.owner = saved
                iface._saved_wiring = None
        node.crashed = False
        self._record("fault.restart", node.name)
        # crash-recovery hook (e.g. the StorM controller replays its
        # intent log); runs after the node is healthy again
        hook = getattr(node, "on_restart", None)
        if hook is not None:
            hook()

    # -- disk faults --------------------------------------------------------

    def disk_errors(
        self, disk: Any, read_error_prob: float = 0.0, write_error_prob: float = 0.0
    ) -> None:
        """Make a disk's I/Os fail probabilistically with DiskIOError."""
        rng = self.rng.child(f"disk:{disk.name}")

        def hook(op: str, offset: int, length: int) -> bool:
            prob = read_error_prob if op == "read" else write_error_prob
            return prob > 0.0 and rng.random() < prob

        disk.fault_hook = hook
        self._record(
            "fault.disk-errors",
            disk.name,
            read=read_error_prob,
            write=write_error_prob,
        )

    def fail_next_disk_io(
        self, disk: Any, op: Optional[str] = None, count: int = 1
    ) -> None:
        """Deterministically fail the next ``count`` I/Os (optionally
        only of one op kind)."""
        state = {"remaining": count}

        def hook(io_op: str, offset: int, length: int) -> bool:
            if op is not None and io_op != op:
                return False
            if state["remaining"] > 0:
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    disk.fault_hook = None
                return True
            return False

        disk.fault_hook = hook
        self._record("fault.disk-fail-next", disk.name, op=op or "any", count=count)

    def clear_disk(self, disk: Any) -> None:
        disk.fault_hook = None
        self._record("fault.clear-disk", disk.name)

    # -- adversarial (hostile-tenant) actions ------------------------------

    def _adversary_for(self, mb: Any) -> RelayAdversary:
        relay = getattr(mb, "relay", None)
        if relay is None:
            raise ValueError(
                f"middle-box {mb.name} has no relay to compromise "
                "(forwarding-mode boxes never touch PDUs)"
            )
        if relay.adversary is None:
            relay.adversary = RelayAdversary(
                self, mb, self.rng.child(f"adversary:{mb.name}")
            )
        return relay.adversary

    @staticmethod
    def _require_active_relay(mb: Any, action: str) -> None:
        # duck-typed (faults must not import repro.core): only the
        # active relay owns sockets to inject cloned PDUs into
        if not hasattr(mb.relay, "nvm"):
            raise ValueError(f"{action} needs an active (redirect-mode) relay")

    def tamper_payload(self, mb: Any, count: int = 1) -> RelayAdversary:
        """Compromise ``mb``: flip one seeded byte in the payload of
        the next ``count`` data-bearing PDUs it relays, *after* hop
        stamping — the endpoint's MAC check is what must catch it."""
        self._demote_express("tamper")
        adversary = self._adversary_for(mb)
        adversary.tamper_next += count
        self._record("fault.tamper-armed", mb.name, count=count)
        return adversary

    def replay_pdu(self, mb: Any, count: int = 1) -> RelayAdversary:
        """Compromise ``mb``: re-send a clone of the next ``count``
        stamped PDUs right behind the originals (a replay attack; the
        endpoint's sequence window must reject the duplicates)."""
        self._demote_express("replay")
        adversary = self._adversary_for(mb)
        self._require_active_relay(mb, "replay")
        adversary.replay_next += count
        self._record("fault.replay-armed", mb.name, count=count)
        return adversary

    def reorder_pdus(self, mb: Any, count: int = 1) -> RelayAdversary:
        """Compromise ``mb``: hold the next ``count`` whole-PDU
        commands it relays and release them behind the following PDU —
        an in-flight reordering the endpoint's window must flag."""
        self._demote_express("reorder")
        adversary = self._adversary_for(mb)
        self._require_active_relay(mb, "reorder")
        adversary.reorder_next += count
        self._record("fault.reorder-armed", mb.name, count=count)
        return adversary

    def chain_bypass(self, flow: Any, mb: Any) -> None:
        """Maliciously reprogram the SDN rules so ``flow`` skips
        ``mb``, *without* the control plane's authorized
        re-registration (which attach/reconfigure perform).  The
        endpoint's traversal proof must catch the missing hop mark."""
        if mb not in flow.middleboxes:
            raise ValueError(f"{mb.name} is not on {flow.cookie}")
        if mb.relay is not None and hasattr(mb.relay, "nvm"):
            raise ValueError(
                "cannot bypass an active relay mid-flow (it owns TCP state)"
            )
        self._demote_express("chain-bypass")
        remaining = [m for m in flow.middleboxes if m is not mb]
        flow.chain.retire(flow.chain.stage(middleboxes=remaining))
        self.adversarial.append(
            {"kind": "chain-violation", "flow": self._flow_name(flow),
             "seq": -1, "mb": mb.name}
        )
        self._record("tamper.bypass", flow.cookie, mb=mb.name)

    @staticmethod
    def _flow_name(flow: Any) -> str:
        """The name integrity detections key on: the volume IQN for
        block flows, the raw flow name otherwise."""
        name = flow.volume_name
        if name.startswith("objstore://"):
            return name
        from repro.iscsi.pdu import volume_iqn

        return volume_iqn(name)

    def fuzz_semantic_monitor(
        self, monitor: Any, blocks: int = 64, base_offset: int = 0,
        misaligned: int = 4,
    ) -> int:
        """Feed adversarial payloads straight through the monitor's
        upstream transform — the bytes a compromised VM would write —
        plus ``misaligned`` hostile-geometry accesses.  Returns PDUs
        fed; the monitor must survive every one of them (no exception,
        bounded state, still logging afterwards)."""
        from repro.fs.layout import BLOCK_SIZE
        from repro.iscsi.pdu import ScsiCommandPdu, next_task_tag
        from repro.workloads.hostile import hostile_dirent_corpus

        rng = self.rng.child("fuzz:monitor")
        corpus = hostile_dirent_corpus(seed=rng.randint(0, 2**31 - 1), count=blocks)
        fed = 0
        for i, payload in enumerate(corpus):
            pdu = ScsiCommandPdu(
                "write", base_offset + i * BLOCK_SIZE, BLOCK_SIZE,
                next_task_tag(), payload,
            )
            monitor.transform_upstream(pdu)
            fed += 1
        for _ in range(misaligned):
            offset = base_offset + rng.randint(1, BLOCK_SIZE - 1)
            pdu = ScsiCommandPdu(
                "write", offset, BLOCK_SIZE, next_task_tag(),
                rng.randbytes(BLOCK_SIZE),
            )
            monitor.transform_upstream(pdu)
            fed += 1
        self._record("tamper.fuzz", getattr(monitor, "name", "monitor"), pdus=fed)
        return fed
