"""NAT rule chains with connection tracking.

StorM's splicing installs SNAT/DNAT rules like the ones in Fig. 3
(e.g. on the tenant VM's host: match ``dst target_host_ip:3260`` →
``SNAT src -> ovs1_ip:vm1_port; DNAT dst -> ovs2_ip:3260``).  The
*conntrack* table makes translations sticky per connection: once a
flow is established its translation survives rule removal — the
property the paper's atomic volume-attach protocol depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.packet import FiveTuple, Packet


@dataclass
class NatRule:
    """Match (wildcards = None) plus SNAT/DNAT rewrites.

    ``hook`` restricts where the rule applies: ``"prerouting"`` (received
    packets, like iptables REDIRECT), ``"output"`` (locally generated),
    or ``"any"``.
    """

    match_src_ip: Optional[str] = None
    match_src_port: Optional[int] = None
    match_dst_ip: Optional[str] = None
    match_dst_port: Optional[int] = None
    snat_ip: Optional[str] = None
    snat_port: Optional[int] = None
    dnat_ip: Optional[str] = None
    dnat_port: Optional[int] = None
    cookie: Optional[str] = None
    hook: str = "any"

    def matches(self, packet: Packet) -> bool:
        checks = (
            (self.match_src_ip, packet.src_ip),
            (self.match_src_port, packet.src_port),
            (self.match_dst_ip, packet.dst_ip),
            (self.match_dst_port, packet.dst_port),
        )
        return all(want is None or want == got for want, got in checks)


@dataclass
class _Translation:
    """Forward rewrite plus the reply-direction inverse."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int


class ConnTrack:
    """Per-connection translation state (both directions)."""

    def __init__(self):
        self._forward: dict[FiveTuple, _Translation] = {}
        self._reply: dict[FiveTuple, _Translation] = {}

    def lookup(self, five_tuple: FiveTuple) -> Optional[tuple[str, _Translation]]:
        if five_tuple in self._forward:
            return "forward", self._forward[five_tuple]
        if five_tuple in self._reply:
            return "reply", self._reply[five_tuple]
        return None

    def record(self, original: FiveTuple, translated: FiveTuple) -> None:
        self._forward[original] = _Translation(
            translated.src_ip, translated.src_port, translated.dst_ip, translated.dst_port
        )
        # Reply packets arrive addressed to the translated identity and
        # must be rewritten back to the original endpoints.
        self._reply[translated.reversed()] = _Translation(
            original.dst_ip, original.dst_port, original.src_ip, original.src_port
        )

    def forget(self, original: FiveTuple) -> None:
        translation = self._forward.pop(original, None)
        if translation is not None:
            translated = FiveTuple(
                original.protocol,
                translation.src_ip,
                translation.src_port,
                translation.dst_ip,
                translation.dst_port,
            )
            self._reply.pop(translated.reversed(), None)

    def __len__(self) -> int:
        return len(self._forward)


#: Capacity of the negative-decision cache.  A pure cache — entries
#: are recomputed on miss — so capping it is semantically neutral; it
#: turns a table that grew one entry per flow *ever* seen into O(cap)
#: regardless of attach churn (the fleet-scale requirement).
NO_MATCH_CAP = 4096


class NatTable:
    """An iptables-like NAT chain applied by a node's IP stack.

    The per-flow match decision is precomputed: a positive decision
    lives in conntrack (as before), and a *negative* one — this flow
    matches no rule at this hook — is cached so established flows stop
    paying the rule scan on every packet.  Installing a rule flushes
    the negative cache (new rules can only add matches; removals can't
    turn a non-match into a match, and translated flows stay pinned by
    conntrack anyway).  The negative cache is bounded at
    :data:`NO_MATCH_CAP` entries, evicting oldest-first.
    """

    def __init__(self):
        self.rules: list[NatRule] = []
        self.conntrack = ConnTrack()
        # insertion-ordered for deterministic oldest-first eviction
        self._no_match: dict[tuple, None] = {}
        #: observability bus hook plus the owning node's name for
        #: metric attribution; None = uninstrumented (no overhead).
        self.obs = None
        self.scope = ""
        #: change notification registered by the express path when a
        #: compiled flow depends on this chain (see repro.net.express);
        #: any NAT table change must demote those flows to packet mode.
        self._x_on_change: Optional[Callable[[], None]] = None

    def install(self, rule: NatRule) -> None:
        self.rules.append(rule)
        self._no_match.clear()
        if self._x_on_change is not None:
            self._x_on_change()

    def remove_by_cookie(self, cookie: str) -> int:
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.cookie != cookie]
        if self._x_on_change is not None:
            self._x_on_change()
        return before - len(self.rules)

    def rules_for_cookie(self, cookie: str) -> list[NatRule]:
        """Rules tagged exactly ``cookie`` (reconciler audits)."""
        return [r for r in self.rules if r.cookie == cookie]

    def cookies(self) -> set[str]:
        """Every distinct cookie currently installed — attach-time NAT
        rules are transient, so outside an in-flight attach saga this
        set should contain no ``storm`` cookies at all."""
        return {r.cookie for r in self.rules if r.cookie is not None}

    def translate(self, packet: Packet, hook: str = "any") -> bool:
        """Rewrite ``packet`` in place.  Returns True if translated.

        Established connections use their conntrack entry even after the
        originating rule is removed; new connections consult the rules.
        """
        conntrack = self.conntrack
        if not self.rules and not conntrack._forward and not conntrack._reply:
            return False  # nothing ever installed on this node
        five_tuple = packet.five_tuple
        hit = conntrack.lookup(five_tuple)
        if hit is not None:
            _direction, translation = hit
            self._apply(packet, translation)
            if self.obs is not None:
                self.obs.metrics.counter("nat.conntrack_hit", self.scope).inc()
            return True
        flow_key = (hook, five_tuple)
        if flow_key in self._no_match:
            return False
        for rule in self.rules:
            if rule.hook not in ("any", hook) and hook != "any":
                continue
            if not rule.matches(packet):
                continue
            translation = _Translation(
                rule.snat_ip if rule.snat_ip is not None else packet.src_ip,
                rule.snat_port if rule.snat_port is not None else packet.src_port,
                rule.dnat_ip if rule.dnat_ip is not None else packet.dst_ip,
                rule.dnat_port if rule.dnat_port is not None else packet.dst_port,
            )
            self._apply(packet, translation)
            conntrack.record(five_tuple, packet.five_tuple)
            if self.obs is not None:
                self.obs.metrics.counter("nat.rule_match", self.scope).inc()
            return True
        self._note_no_match(flow_key)
        return False

    def _note_no_match(self, flow_key: tuple) -> None:
        """Cache a negative decision, evicting oldest-first at capacity.
        Shared with the express path's read-only probe so both modes
        populate (and bound) the cache identically."""
        no_match = self._no_match
        no_match[flow_key] = None
        if len(no_match) > NO_MATCH_CAP:
            del no_match[next(iter(no_match))]

    @staticmethod
    def _apply(packet: Packet, translation: _Translation) -> None:
        packet.src_ip = translation.src_ip
        packet.src_port = translation.src_port
        packet.dst_ip = translation.dst_ip
        packet.dst_port = translation.dst_port
