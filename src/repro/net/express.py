"""Flow-level express path: simulate established flows, not packets.

Once a TCP flow is established and its forwarding decisions are stable
(switch flow-table entries resolved, NAT pinned by conntrack, no
payload-inspecting hooks on the path), per-packet simulation of that
flow is pure mechanical replay: every segment traverses the same
elements, pays the same serialization/latency arithmetic, and hits the
same cached decisions.  The express path promotes such a flow to a
*compiled conduit* and replays the arithmetic directly — one scheduled
event per FIFO element instead of the whole store/process/timeout
machinery — while producing **bit-identical timing**.

Exactness argument (DESIGN.md §12 has the long form):

- Every FIFO element (a link direction, a stack's software-forward
  queue) carries an :class:`_ElemState` with a ``busy`` horizon.  Real
  packets *commit* their serialization slot at true arrival time
  (``Link.transmit`` / ``NetworkStack.handle_receive``); the pump pops
  the committed start and aligns to it.  Express segments commit at the
  same point in virtual time via a scheduled :class:`_WalkEvent`.
  Because both kinds commit in arrival order, FIFO interleaving of
  express and packet-mode traffic is exact.
- The per-element arithmetic is float-op-for-float-op the same as the
  pump's (``size / bandwidth + overhead``, then ``+ latency``), and the
  chained event times are pushed as *absolute* times
  (:meth:`Simulator.schedule_abs`), so no extra rounding is introduced.
- Promotion is guarded by a read-only probe that walks the flow's
  headers hop-by-hop through the real tables; anything it cannot
  replay exactly (packet taps, forward hooks, flood, non-inert faults,
  un-conntracked NAT matches) refuses promotion.
- Demotion is mandatory and lossless: any flow-table or NAT install /
  removal on a probed table, a route change on a probed stack, or any
  fault-injector action demotes every flow back to packet mode; the
  next segments take the packet path and the commitment discipline
  keeps their timing seamless.

Side effects that packet mode applies per hop (interface counters,
``packets_switched``, rule hit counts, ``packet.trace``, per-hop obs
events) are applied in bulk at delivery time — same totals, same trace
contents, same causal span tree; only the intermediate timestamps of
*observability* events collapse to the delivery instant.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.core import Event, Simulator
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.stack import BROADCAST_MAC
from repro.net.switch import Drop, ModDstMac, Normal, Output, Switch, ToController

#: clean data ACKs received before a socket attempts promotion
PROMOTE_AFTER = 4
#: after a failed probe, retry every this-many further ACKs
RETRY_EVERY = 16
#: probe hop budget (routing loop guard)
MAX_HOPS = 48

_MISS = object()


class _ElemState:
    """Wire-occupancy horizon of one FIFO element.

    ``busy`` is the absolute time the element finishes its last
    committed slot; ``pending`` holds the committed start times of
    *real* (packet-mode) packets currently queued, popped 1:1 by the
    element's pump for alignment.
    """

    __slots__ = ("busy", "pending")

    def __init__(self) -> None:
        self.busy: float = 0.0
        self.pending: deque[float] = deque()


class CompiledPath:
    """An immutable compiled conduit for one socket's outgoing flow."""

    __slots__ = (
        "steps", "final", "dst_stack", "key", "hops", "tx", "rx",
        "switches", "mac_learns", "rules", "faults", "counters", "steers",
    )

    def __init__(
        self,
        steps: tuple,
        final: tuple,
        dst_stack: Any,
        key: tuple,
        plan: "_Plan",
    ) -> None:
        self.steps = steps
        self.final = final
        self.dst_stack = dst_stack
        self.key = key
        self.hops = tuple(plan.hops)
        self.tx = tuple(plan.tx)
        self.rx = tuple(plan.rx)
        self.switches = tuple(plan.switches)
        self.mac_learns = tuple(plan.mac_learns)
        self.rules = tuple(plan.rules)
        self.faults = tuple(plan.faults)
        self.counters = tuple(plan.counters)
        self.steers = tuple(plan.steers)


class _Plan:
    """Mutable accumulators filled while probing; frozen into the path."""

    __slots__ = (
        "hops", "tx", "rx", "switches", "mac_learns", "rules", "faults",
        "counters", "steers",
    )

    def __init__(self) -> None:
        self.hops: list[str] = []
        self.tx: list[Any] = []
        self.rx: list[Any] = []
        self.switches: list[Switch] = []
        self.mac_learns: list[tuple] = []
        self.rules: list[Any] = []
        self.faults: list[Any] = []
        self.counters: list[tuple] = []
        self.steers: list[tuple] = []


class _WalkEvent(Event):
    """One express step: fires at the commit time of element ``i`` of
    ``path`` (or at delivery when ``i < 0``).  Allocation-light: the
    event is its own callback."""

    __slots__ = ("mgr", "path", "packet", "i", "t")

    def __init__(
        self, mgr: "ExpressManager", path: CompiledPath, packet: Packet, i: int, t: float
    ) -> None:
        # Deliberately no super().__init__: the kernel's step() only
        # touches ``callbacks`` and ``_processed``.
        self.sim = mgr.sim
        self.callbacks = [self]  # type: ignore[list-item]
        self._processed = False
        self.mgr = mgr
        self.path = path
        self.packet = packet
        self.i = i
        self.t = t

    def __call__(self, _event: Event) -> None:
        if self.i < 0:
            self.mgr._deliver(self.path, self.packet)
        else:
            self.mgr._hop(self.path, self.packet, self.i, self.t)


class ExpressManager:
    """Owns promotion, the compiled walks, and demotion for one sim.

    Install **before** building the topology (links snapshot
    ``sim.express`` at construction to create their element states):
    ``ExpressManager(sim)`` registers itself as ``sim.express``.
    """

    def __init__(
        self,
        sim: Simulator,
        promote_after: int = PROMOTE_AFTER,
        retry_every: int = RETRY_EVERY,
    ) -> None:
        self.sim = sim
        self.promote_after = promote_after
        self.retry_every = retry_every
        #: observability bus (wired by ``repro.obs.instrument``)
        self.obs: Any = None
        self._active: dict[Any, CompiledPath] = {}
        self.promotions = 0
        self.demotions = 0
        self.probes_failed = 0
        sim.express = self

    # -- element states ------------------------------------------------

    def elem_state(self) -> _ElemState:
        """Factory used by Link/NetworkStack so they need no import."""
        return _ElemState()

    # -- promotion -----------------------------------------------------

    def on_ack(self, socket: Any) -> None:
        """Called by the TCP layer for every ACK that advances a
        not-yet-promoted socket; promotes after enough clean ACKs."""
        n = socket._x_acks + 1
        socket._x_acks = n
        if n < self.promote_after or socket.state != "established":
            return
        if (n - self.promote_after) % self.retry_every:
            return
        path = self._probe(socket)
        if path is None:
            self.probes_failed += 1
            return
        socket._xpath = path
        self._active[socket] = path
        self.promotions += 1
        obs = self.obs
        if obs is not None:
            obs.event(
                "flow.promote",
                target=socket.express_label
                or f"{socket.local_ip}:{socket.local_port}",
                hops=len(path.hops),
            )

    # -- demotion ------------------------------------------------------

    def demote(self, socket: Any, reason: str = "") -> None:
        if self._active.pop(socket, None) is None:
            return
        socket._xpath = None
        socket._x_acks = 0
        self.demotions += 1
        obs = self.obs
        if obs is not None:
            obs.event(
                "flow.demote",
                target=socket.express_label
                or f"{socket.local_ip}:{socket.local_port}",
                reason=reason,
            )

    def demote_all(self, reason: str = "") -> None:
        """Mandatory lossless fallback: flows revert to packet mode;
        the commitment discipline keeps subsequent timing exact."""
        for socket in list(self._active):
            self.demote(socket, reason)

    def _on_invalidate(self) -> None:
        """Bound to ``_x_on_change`` hooks of every table/stack a
        compiled path depends on."""
        if self._active:
            self.demote_all("state-change")

    @property
    def active_flows(self) -> int:
        return len(self._active)

    # -- the walk ------------------------------------------------------

    def send(self, socket: Any, packet: Packet) -> None:
        """Entry from ``TcpSocket._emit``: element 0 is committed inline
        (transmission out of the source stack is synchronous)."""
        self._hop(socket._xpath, packet, 0, self.sim.now)

    def _hop(self, path: CompiledPath, packet: Packet, i: int, t: float) -> None:
        _pre, st, bw, oh, lat = path.steps[i]
        busy = st.busy
        start = busy if busy > t else t
        if bw:
            dep = start + (packet.size / bw + oh)
            out = dep + lat
        else:
            dep = start + oh
            out = dep
        st.busy = dep
        i += 1
        steps = path.steps
        if i < len(steps):
            for d in steps[i][0]:
                out = out + d
        else:
            i = -1
        self.sim.schedule_abs(out, _WalkEvent(self, path, packet, i, out))

    def _deliver(self, path: CompiledPath, packet: Packet) -> None:
        """Arrival at the destination stack: apply the bulk side-effect
        plan, then run the *real* demux and segment handling."""
        size = packet.size
        for iface in path.tx:
            iface.tx_packets += 1
            iface.tx_bytes += size
        for iface in path.rx:
            iface.rx_packets += 1
            iface.rx_bytes += size
        for switch in path.switches:
            switch.packets_switched += 1
        for table, mac, port in path.mac_learns:
            table[mac] = port
        for rule in path.rules:
            rule.hits += 1
        for faults in path.faults:
            faults.passed += 1
        for counter, by_size in path.counters:
            counter.inc(size if by_size else 1)
        packet.trace.extend(path.hops)
        ctx = packet.ctx
        if ctx is not None:
            for name in path.hops:
                ctx.hop(name, packet)
            for name, cookie in path.steers:
                ctx.event("switch.steer", target=name, cookie=cookie)
        (
            packet.src_mac,
            packet.dst_mac,
            packet.src_ip,
            packet.dst_ip,
            packet.src_port,
            packet.dst_port,
        ) = path.final
        stack = path.dst_stack
        socket = stack._sockets.get(path.key)
        if socket is not None:
            socket.handle_segment(packet.payload, packet)
        elif path.key[1] in stack._listeners:
            pass  # a listener ignores data/ack, as _deliver_local would
        else:
            stack.dropped_packets += 1

    # -- the probe -----------------------------------------------------

    def _probe(self, socket: Any) -> Optional[CompiledPath]:
        """Read-only dry walk of the socket's outgoing headers.

        Returns a compiled path, or None if anything on the path cannot
        be replayed exactly.  The only states it mutates are ones
        packet mode would converge to anyway (route memo, NAT negative
        cache) plus the ``_x_on_change`` demotion hooks it registers on
        every table whose content the compilation depends on.
        """
        if socket.remote_ip is None or socket.state != "established":
            return None
        pkt = Packet(
            src_mac="",
            dst_mac="",
            src_ip=socket.local_ip,
            dst_ip=socket.remote_ip,
            src_port=socket.local_port,
            dst_port=socket.remote_port or 0,
            protocol="tcp",
            size=HEADER_BYTES,
        )
        plan = _Plan()
        steps: list[tuple] = []
        pre: list[float] = []
        stack = socket.stack
        if not self._probe_nat(stack.nat, pkt, "output", plan):
            return None
        hops = 0
        while True:
            hops += 1
            if hops > MAX_HOPS:
                return None
            stack._x_on_change = self._on_invalidate
            route = stack._lookup_route(pkt.dst_ip)
            if route is None:
                return None
            next_hop = route.via or pkt.dst_ip
            arp = stack._arp_by_iface.get(route.iface.name)
            dst_mac = arp.resolve(next_hop) if arp is not None else None
            if dst_mac is None:
                return None
            pkt.src_mac = route.iface.mac
            pkt.dst_mac = dst_mac
            landed = self._probe_wire(route.iface, pkt, steps, pre, plan)
            if landed is None:
                return None
            node, in_iface = landed
            if pkt.dst_mac not in (in_iface.mac, BROADCAST_MAC):
                return None
            plan.hops.append(node.name)
            stack = node.stack
            if stack.packet_taps:
                return None
            if not self._probe_nat(stack.nat, pkt, "prerouting", plan):
                return None
            if pkt.dst_ip in stack._local_ips:
                key = (pkt.dst_ip, pkt.dst_port, pkt.src_ip, pkt.src_port)
                peer = stack._sockets.get(key)
                if peer is None or peer.state != "established":
                    return None
                final = (
                    pkt.src_mac, pkt.dst_mac, pkt.src_ip,
                    pkt.dst_ip, pkt.src_port, pkt.dst_port,
                )
                return CompiledPath(tuple(steps), final, stack, key, plan)
            if not stack.ip_forward or stack.forward_hook is not None:
                return None
            st = stack._xfwd
            if st is None or stack._forward_queue is None:
                return None
            steps.append((tuple(pre), st, 0.0, stack.forward_delay, 0.0))
            del pre[:]
            # loop: route_and_send again from the forwarding stack

    def _probe_wire(
        self,
        iface: Any,
        pkt: Packet,
        steps: list[tuple],
        pre: list[float],
        plan: _Plan,
    ) -> Optional[tuple]:
        """Follow one transmission through links and switches until it
        lands on a Node; returns (node, ingress_iface) or None."""
        while True:
            link = iface.link
            if link is None:
                return None
            faults = link.faults
            if faults is not None:
                if not faults.up or faults.drop_next_count > 0:
                    return None
                if faults.match is not None and not faults.match(pkt):
                    pass  # faults never touch this flow
                elif faults.drop_prob or faults.corrupt_prob or faults.delay_prob:
                    return None
                plan.faults.append(faults)
            xstates = link._xstates
            if xstates is None:
                return None
            st = xstates.get(iface)
            if st is None:
                return None
            plan.tx.append(iface)
            if link.obs is not None:
                metrics = link.obs.metrics
                plan.counters.append((metrics.counter("link.tx", link.obs_name), False))
                plan.counters.append(
                    (metrics.counter("link.tx_bytes", link.obs_name), True)
                )
            steps.append(
                (tuple(pre), st, link.bandwidth, link.per_packet_overhead, link.latency)
            )
            del pre[:]
            other = link.other_end(iface)
            plan.rx.append(other)
            owner = other.owner
            if owner is None:
                return None
            if not isinstance(owner, Switch):
                return owner, other
            in_port = owner._port_names.get(other)
            if in_port is None:
                return None
            plan.hops.append(owner.name)
            plan.switches.append(owner)
            plan.mac_learns.append((owner._mac_table, pkt.src_mac, in_port))
            if owner.forwarding_delay:
                pre.append(owner.forwarding_delay)
            table = owner.flow_table
            table._x_on_change = self._on_invalidate
            rule = self._lookup_rule(table, pkt, in_port)
            out_port: Optional[str] = None
            if rule is None:
                if owner.obs is not None:
                    plan.counters.append(
                        (owner.obs.metrics.counter("switch.l2", owner.name), False)
                    )
                out_port = self._l2_port(owner, pkt, in_port)
            else:
                plan.rules.append(rule)
                if owner.obs is not None:
                    plan.counters.append(
                        (owner.obs.metrics.counter("switch.flow_hit", owner.name), False)
                    )
                    plan.steers.append((owner.name, rule.cookie))
                decided = False
                for action in rule.actions:
                    if isinstance(action, ModDstMac):
                        pkt.dst_mac = action.new_mac
                    elif isinstance(action, Output):
                        out_port = action.port
                        decided = True
                        break
                    elif isinstance(action, (Drop, ToController)):
                        return None
                    elif isinstance(action, Normal):
                        out_port = self._l2_port(owner, pkt, in_port)
                        decided = True
                        break
                if not decided:  # rewrite-only rule: finish with L2
                    out_port = self._l2_port(owner, pkt, in_port)
            if out_port is None:
                return None
            iface = owner.ports.get(out_port)
            if iface is None:
                return None

    @staticmethod
    def _lookup_rule(table: Any, pkt: Packet, in_port: str) -> Any:
        """FlowTable.lookup minus the hit counting (emulated at
        delivery); populates the decision cache exactly as packet mode
        would on the next packet."""
        key = (
            in_port, pkt.src_mac, pkt.dst_mac, pkt.src_ip,
            pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.protocol,
        )
        rule = table._decision_cache.get(key, _MISS)
        if rule is _MISS:
            rule = None
            for candidate in table.rules:
                if candidate.matches(pkt, in_port):
                    rule = candidate
                    break
            table._note_decision(key, rule)
        return rule

    @staticmethod
    def _l2_port(switch: Switch, pkt: Packet, in_port: str) -> Optional[str]:
        known = switch._mac_table.get(pkt.dst_mac)
        if known is None or known == in_port:
            return None  # flood or behind-ingress drop: not replayable
        return known

    def _probe_nat(self, nat: Any, pkt: Packet, hook: str, plan: _Plan) -> bool:
        """Replicate ``NatTable.translate`` read-only.  A rule match
        without a conntrack entry would create state → refuse."""
        nat._x_on_change = self._on_invalidate  # demote even if empty now
        conntrack = nat.conntrack
        if not nat.rules and not conntrack._forward and not conntrack._reply:
            return True
        five_tuple = pkt.five_tuple
        hit = conntrack.lookup(five_tuple)
        if hit is not None:
            translation = hit[1]
            pkt.src_ip = translation.src_ip
            pkt.src_port = translation.src_port
            pkt.dst_ip = translation.dst_ip
            pkt.dst_port = translation.dst_port
            if nat.obs is not None:
                plan.counters.append(
                    (nat.obs.metrics.counter("nat.conntrack_hit", nat.scope), False)
                )
            return True
        flow_key = (hook, five_tuple)
        if flow_key in nat._no_match:
            return True
        for rule in nat.rules:
            if rule.hook not in ("any", hook):
                continue
            if rule.matches(pkt):
                return False
        nat._note_no_match(flow_key)
        return True
