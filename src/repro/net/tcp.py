"""A windowed, ACK-clocked TCP model.

Faithful to the properties StorM's active-relay exploits, cheap on
everything else: in-order lossless delivery (the simulated fabric
preserves order), a fixed flow-control window, cumulative ACKs, a
3-way handshake (which is what populates NAT conntrack during the
atomic volume attach), and RST for failure injection.

Throughput of a connection is window/RTT-bound exactly like real TCP,
which is the mechanism behind the paper's Figures 5–9: splitting one
long connection into two short ones at the middle-box shortens each
ACK loop and restores throughput.

With ``reliable=True`` the socket additionally survives loss injected
by :mod:`repro.faults`: go-back-N retransmission driven by a single
lazy RTO timer with exponential backoff, 3-dup-ACK fast retransmit,
sequence-checked receive (out-of-order segments are dropped and the
cumulative ACK re-asserted), SYN retransmission, and black-hole
detection (``max_retransmits`` consecutive timeouts reset the
connection locally).  All of it is gated on the flag so the default
lossless fast path executes exactly as before.  FIN is not
retransmitted: teardown on a lossy link eventually falls back to RST
semantics, which every consumer in this codebase already handles.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.sim import Event, Simulator, Store
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.stack import NetworkStack

_message_ids = itertools.count(1)

DEFAULT_MSS = 4096
DEFAULT_WINDOW = 65536


class ConnectionReset(Exception):
    """The peer sent RST (or the connection was torn down underneath)."""


#: Sentinel delivered to pending receivers on reset/close.
RESET = object()
EOF = object()


@dataclass(slots=True)
class TcpSegment:
    kind: str  # syn | syn-ack | ack | data | fin | rst
    seq: int = 0
    ack: int = 0
    length: int = 0
    message_id: int = 0
    message: Any = None
    message_size: int = 0
    is_last: bool = False


class StreamHandle:
    """An outgoing message whose bytes become available incrementally.

    The active relay forwards a large PDU chunk-by-chunk as it arrives
    (cut-through at segment granularity): each received chunk
    :meth:`credit`\\ s bytes to the outgoing copy, and :meth:`finish`
    attaches the (possibly transformed) message object carried by the
    final segment.
    """

    def __init__(self, sim: Simulator, message_id: int, total_size: int) -> None:
        self.sim = sim
        self.message_id = message_id
        self.total_size = total_size
        self.credited = 0
        self.finished = False
        self.message: Any = None
        self._waiters: list[Event] = []

    def credit(self, nbytes: int) -> None:
        self.credited = min(self.total_size, self.credited + nbytes)
        self._wake()

    def finish(self, message: Any) -> None:
        self.message = message
        self.finished = True
        self.credited = self.total_size
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def wait(self) -> Event:
        event = Event(self.sim)
        self._waiters.append(event)
        return event


class TcpSocket:
    """One endpoint of a connection, bound to a node's stack."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        local_ip: str,
        local_port: int,
        remote_ip: Optional[str] = None,
        remote_port: Optional[int] = None,
        mss: int = DEFAULT_MSS,
        window: int = DEFAULT_WINDOW,
        reliable: bool = False,
        rto: float = 0.05,
        max_retransmits: int = 8,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.mss = mss
        self.window = window
        self.reliable = reliable
        self.rto = rto
        self.max_retransmits = max_retransmits
        self.state = "closed"
        self.established_event: Event = sim.event()
        self._tx_queue = Store(sim)
        self._rx_store = Store(sim)
        # sender-side accounting.  At most one process (the sender) ever
        # blocks on the window, so a single waiter slot suffices.
        self._sent_bytes = 0
        self._acked_bytes = 0
        self._window_waiter: Optional[Event] = None
        # receiver-side accounting
        self._rx_bytes = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sender_started = False
        # delivery notification (peer ACKed a whole message) — used by
        # the active relay's NVM buffer to know when it may discard.
        # Thresholds are monotone (the sender records them in byte
        # order), so an ordered deque is popped from the left per ACK
        # instead of scanning every in-flight message.
        self._message_thresholds: deque[tuple[int, int]] = deque()  # (threshold, id)
        self._threshold_by_id: dict[int, int] = {}
        self._delivery_events: dict[int, Event] = {}
        #: when set, data segments bypass the message queue and are
        #: handed to this callback one segment at a time (cut-through
        #: consumers like the active relay); sentinels still arrive
        #: via :meth:`recv`
        self.chunk_listener: Optional[Callable[[TcpSegment], None]] = None
        # retransmission state (only touched when ``reliable``)
        self._retx_queue: deque[TcpSegment] = deque()
        self._rto_current = rto
        self._rto_deadline = 0.0
        self._rto_timer_running = False
        self._timeouts_in_row = 0
        self._dup_acks = 0
        self.retransmits = 0
        # graceful-close state: close() with queued/unACKed data defers
        # the FIN to the sender so nothing is silently abandoned.
        # ``_tx_outstanding`` counts messages handed to the sender but
        # not yet fully emitted (the Store hands items straight to the
        # blocked sender, so the queue itself can look empty).
        self._closing = False
        self._tx_outstanding = 0

    # -- identity ------------------------------------------------------

    def demux_key(self) -> tuple[str, int, str, int]:
        return (self.local_ip, self.local_port, self.remote_ip or "", self.remote_port or 0)

    # -- connection management -------------------------------------------

    def connect(self, remote_ip: str, remote_port: int) -> Event:
        """Begin the 3-way handshake; returns the established event."""
        if self.state != "closed":
            raise ConnectionReset(f"connect() in state {self.state}")
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.stack.bind_socket(self)
        self.state = "syn-sent"
        self._emit(TcpSegment(kind="syn"))
        if self.reliable:
            self._arm_rto()
        return self.established_event

    def _start_sender(self) -> None:
        if not self._sender_started:
            self._sender_started = True
            self.sim.process(self._sender(), name=f"tcp-sender:{self.local_ip}:{self.local_port}")

    def close(self) -> None:
        if self.state in ("closed", "reset") or self._closing:
            return
        if self.state == "established" and (
            self._tx_outstanding or self._acked_bytes < self._sent_bytes
        ):
            # data is still queued or in flight: the sender drains it,
            # waits for the ACKs, and only then sequences the FIN
            self._closing = True
            self._tx_queue.put(("close",))
            return
        express = self.sim.express
        if express is not None:
            express.demote(self, "close")
        self._emit(TcpSegment(kind="fin"))
        self.state = "closed"
        self._deliver_sentinel(EOF)
        self.stack.unbind_socket(self)

    def reset(self) -> None:
        """Abortively close (failure injection / iSCSI logout on error)."""
        if self.state == "reset":
            return
        if self.state == "established":
            self._emit(TcpSegment(kind="rst"))
        self._enter_reset()

    def _enter_reset(self) -> None:
        express = self.sim.express
        if express is not None:
            express.demote(self, "reset")
        self.state = "reset"
        # free the 4-tuple so a reconnection can bind it
        self.stack.unbind_socket(self)
        self._deliver_sentinel(RESET)
        waiter, self._window_waiter = self._window_waiter, None
        if waiter is not None and not waiter.triggered:
            waiter.succeed()
        if not self.established_event.triggered:
            self.established_event.fail(ConnectionReset("reset during handshake"))

    def _deliver_sentinel(self, sentinel: Any) -> None:
        # Wake every blocked receiver, and leave one marker for future reads.
        while self._rx_store._getters:
            self._rx_store.put(sentinel)
        self._rx_store.put(sentinel)

    # -- application interface ---------------------------------------------

    def send(self, message: Any, size: int) -> int:
        """Queue an application message of ``size`` bytes. Non-blocking."""
        if self.state == "reset":
            raise ConnectionReset("send on reset connection")
        if self._closing:
            raise ConnectionReset("send after close()")
        message_id = next(_message_ids)
        self._tx_outstanding += 1
        self._tx_queue.put(("msg", message_id, message, size))
        return message_id

    def send_stream(self, total_size: int) -> StreamHandle:
        """Queue a message whose bytes arrive incrementally (cut-through
        relaying); drive it via the returned :class:`StreamHandle`."""
        if self.state == "reset":
            raise ConnectionReset("send on reset connection")
        if self._closing:
            raise ConnectionReset("send after close()")
        handle = StreamHandle(self.sim, next(_message_ids), total_size)
        self._tx_outstanding += 1
        self._tx_queue.put(("stream", handle))
        return handle

    def recv(self) -> Event:
        """Event yielding (message, size); RESET/EOF sentinel on teardown."""
        return self._rx_store.get()

    def when_delivered(self, message_id: int) -> Event:
        """Event firing once the peer has ACKed the entire message.

        Never fires if the connection resets first — which is exactly
        the property the active relay's NVM buffer needs.
        """
        event = self._delivery_events.get(message_id)
        if event is None:
            event = self.sim.event()
            self._delivery_events[message_id] = event
            threshold = self._threshold_by_id.get(message_id)
            if threshold is not None and threshold <= self._acked_bytes:
                event.succeed()
        return event

    # -- sender process -----------------------------------------------------

    def _sender(self) -> Generator[Event, Any, None]:
        while True:
            item = yield self._tx_queue.get()
            if self.state == "reset":
                return
            tag = item[0]
            if tag == "msg":
                _tag, message_id, message, size = item
                sent = yield from self._send_message(message_id, message, size)
            elif tag == "close":
                yield from self._finish_close()
                return
            else:
                handle: StreamHandle = item[1]
                message_id = handle.message_id
                sent = yield from self._send_streamed(handle)
            self._tx_outstanding -= 1
            if not sent:
                return  # connection reset mid-message
            self._message_thresholds.append((self._sent_bytes, message_id))
            self._threshold_by_id[message_id] = self._sent_bytes

    def _finish_close(self) -> Generator[Event, Any, None]:
        # flush: every emitted byte must be ACKed before the FIN goes out
        while self._acked_bytes < self._sent_bytes:
            waiter = self.sim.event()
            self._window_waiter = waiter
            yield waiter
            if self.state == "reset":
                return
        express = self.sim.express
        if express is not None:
            express.demote(self, "close")
        self._emit(TcpSegment(kind="fin"))
        self.state = "closed"
        self._deliver_sentinel(EOF)
        self.stack.unbind_socket(self)

    def _send_message(
        self, message_id: int, message: Any, size: int
    ) -> Generator[Event, Any, bool]:
        offset = 0
        while offset < size:
            chunk = min(self.mss, size - offset)
            if not (yield from self._await_window(chunk)):
                return False
            self._emit_data(
                message_id, chunk, size, message, is_last=offset + chunk >= size
            )
            offset += chunk
        return True

    def _send_streamed(self, handle: StreamHandle) -> Generator[Event, Any, bool]:
        sent = 0
        while sent < handle.total_size:
            while handle.credited <= sent:
                yield handle.wait()
                if self.state == "reset":
                    return False
            chunk = min(self.mss, handle.credited - sent)
            if not (yield from self._await_window(chunk)):
                return False
            is_last = handle.finished and sent + chunk >= handle.total_size
            self._emit_data(
                handle.message_id,
                chunk,
                handle.total_size,
                handle.message if is_last else None,
                is_last=is_last,
            )
            sent += chunk
        return True

    def _await_window(self, chunk: int) -> Generator[Event, Any, bool]:
        while self._sent_bytes - self._acked_bytes + chunk > self.window:
            waiter = self.sim.event()
            self._window_waiter = waiter
            yield waiter
            if self.state == "reset":
                return False
        return True

    def _emit_data(
        self, message_id: int, chunk: int, size: int, message: Any, is_last: bool
    ) -> None:
        segment = TcpSegment(
            kind="data",
            seq=self._sent_bytes,
            length=chunk,
            message_id=message_id,
            message=message,
            message_size=size,
            is_last=is_last,
        )
        self._sent_bytes += chunk
        self.bytes_sent += chunk
        self._emit(segment)
        if self.reliable:
            self._retx_queue.append(segment)
            self._arm_rto()

    def _in_flight(self) -> int:
        return self._sent_bytes - self._acked_bytes

    # -- retransmission (reliable mode only) --------------------------------

    def _arm_rto(self) -> None:
        """Push the retransmission deadline out; start the (single,
        lazy) timer if it is not already pending.  The timer is never
        cancelled — on early firing it re-arms for the remainder."""
        self._rto_deadline = self.sim.now + self._rto_current
        if not self._rto_timer_running:
            self._rto_timer_running = True
            self.sim.timeout(self._rto_current).callbacks.append(self._on_rto)

    def _on_rto(self, _event: Event) -> None:
        self._rto_timer_running = False
        if self.state in ("reset", "closed"):
            return
        outstanding = bool(self._retx_queue) or self.state == "syn-sent"
        if not outstanding:
            self._timeouts_in_row = 0
            return  # everything ACKed; the timer lapses
        remaining = self._rto_deadline - self.sim.now
        if remaining > 1e-12:
            # an ACK pushed the deadline out since the timer was set
            self._rto_timer_running = True
            self.sim.timeout(remaining).callbacks.append(self._on_rto)
            return
        self._timeouts_in_row += 1
        if self._timeouts_in_row > self.max_retransmits:
            # black hole: the peer is unreachable — fail locally (no RST
            # on the wire; it would not get through anyway)
            self._enter_reset()
            return
        self._rto_current = min(self._rto_current * 2.0, 16.0 * self.rto)
        if self.state == "syn-sent":
            self.retransmits += 1
            self._emit(TcpSegment(kind="syn"))
        else:
            # go-back-N: re-emit every unACKed segment in order
            for segment in self._retx_queue:
                self.retransmits += 1
                self._emit(segment)
        self._arm_rto()

    # -- segment handling -----------------------------------------------------

    def handle_segment(self, segment: TcpSegment, packet: Packet) -> None:
        if self.state == "reset":
            return
        if segment.kind == "rst":
            self._enter_reset()
            return
        if segment.kind == "fin":
            self._deliver_sentinel(EOF)
            return
        if segment.kind == "syn-ack" and self.state == "syn-sent":
            self.state = "established"
            self._emit(TcpSegment(kind="ack"))
            self._start_sender()
            self.established_event.succeed(self)
            return
        if segment.kind == "ack" and self.state == "syn-received":
            self.state = "established"
            self._start_sender()
            if self._on_established is not None:
                self._on_established(self)
            return
        if segment.kind == "ack":
            if segment.ack > self._acked_bytes:
                acked = self._acked_bytes = segment.ack
                if self.reliable:
                    retx = self._retx_queue
                    while retx and retx[0].seq + retx[0].length <= acked:
                        retx.popleft()
                    self._dup_acks = 0
                    self._timeouts_in_row = 0
                    self._rto_current = self.rto
                    if retx:
                        self._rto_deadline = self.sim.now + self._rto_current
                waiter, self._window_waiter = self._window_waiter, None
                if waiter is not None and not waiter.triggered:
                    waiter.succeed()
                thresholds = self._message_thresholds
                while thresholds and thresholds[0][0] <= acked:
                    _threshold, message_id = thresholds.popleft()
                    del self._threshold_by_id[message_id]
                    event = self._delivery_events.pop(message_id, None)
                    if event is not None and not event.triggered:
                        event.succeed()
                express = self.sim.express
                if express is not None and self._xpath is None:
                    express.on_ack(self)
            elif self.reliable and self._retx_queue and segment.ack == self._acked_bytes:
                self._dup_acks += 1
                if self._dup_acks == 3:
                    # fast retransmit (once per loss event: the counter
                    # only re-fires after new data is ACKed)
                    for retx_segment in self._retx_queue:
                        self.retransmits += 1
                        self._emit(retx_segment)
                    self._rto_deadline = self.sim.now + self._rto_current
            return
        if segment.kind == "data":
            if self.state != "established":
                if self.state == "syn-received" and self.reliable:
                    # the peer's handshake ACK was lost but it moved on
                    # to data — treat arrival as an implicit ACK
                    self.state = "established"
                    self._start_sender()
                    if self._on_established is not None:
                        self._on_established(self)
                else:
                    return
            if self.reliable and segment.seq != self._rx_bytes:
                # loss/reordering hole (or a duplicate): drop and
                # re-assert the cumulative ACK so the sender converges
                self._emit(TcpSegment(kind="ack", ack=self._rx_bytes))
                return
            self._rx_bytes += segment.length
            self.bytes_received += segment.length
            # ACK on arrival, independent of app consumption — in the
            # active relay this IS the short-circuited acknowledgment
            self._emit(TcpSegment(kind="ack", ack=self._rx_bytes))
            if self.chunk_listener is not None:
                self.chunk_listener(segment)
                return
            if segment.is_last:
                self._rx_store.put((segment.message, segment.message_size))
            return
        if segment.kind == "syn":
            if self.state == "syn-received":
                self._emit(TcpSegment(kind="syn-ack"))  # ours was lost
                return
            if self.reliable and self.state == "established":
                # the peer restarted and is reconnecting with the same
                # 4-tuple: this incarnation is dead — tear it down and
                # hand the SYN to the listener (challenge-ACK shortcut)
                self._enter_reset()
                listener = self.stack._listeners.get(self.local_port)
                if listener is not None:
                    listener.handle_segment(segment, packet)
            return

    #: set by TcpListener for server-side sockets
    _on_established: Optional[Callable[["TcpSocket"], None]] = None

    #: express fast path (:mod:`repro.net.express`): the compiled
    #: conduit while this flow is promoted (data/ack segments bypass
    #: per-packet simulation), the clean-ACK count toward promotion,
    #: and a human-readable label for flow.promote/demote obs events.
    _xpath: Any = None
    _x_acks: int = 0
    express_label: str = ""

    # -- wire output ------------------------------------------------------------

    def _emit(self, segment: TcpSegment) -> None:
        packet = Packet(
            src_mac="",
            dst_mac="",
            src_ip=self.local_ip,
            dst_ip=self.remote_ip or "",
            src_port=self.local_port,
            dst_port=self.remote_port or 0,
            protocol="tcp",
            size=HEADER_BYTES + segment.length,
            payload=segment,
        )
        # Trace-context propagation: a message object (e.g. an iSCSI
        # PDU) stamped with a context spreads it to every packet that
        # carries a piece of it, joining per-hop telemetry to the
        # request's span tree.  Contexts are only ever stamped while a
        # bus is collecting, so the copy is gated on ``bus.enabled`` to
        # keep obs-off runs free of per-packet attribute lookups.
        message = segment.message
        if message is not None:
            bus = self.stack.obs_bus
            if bus is not None and bus.enabled:
                packet.ctx = getattr(message, "ctx", None)
        if self._xpath is not None and segment.kind in ("data", "ack"):
            # Promoted flow: replay the compiled conduit analytically.
            # SYN/FIN/RST stay on the packet path (and handshake/
            # teardown segments are what change the state a compiled
            # path depends on).
            self.sim.express.send(self, packet)
            return
        self.stack.send_ip(packet)


class TcpListener:
    """A passive socket: accepts connections arriving on ``port``."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        ip: str,
        port: int,
        mss: int = DEFAULT_MSS,
        window: int = DEFAULT_WINDOW,
        reliable: bool = False,
        rto: float = 0.05,
        max_retransmits: int = 8,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.ip = ip
        self.port = port
        self.mss = mss
        self.window = window
        self.reliable = reliable
        self.rto = rto
        self.max_retransmits = max_retransmits
        self.accept_queue = Store(sim)
        #: propagated to accepted sockets for express-flow obs labels
        self.express_label = ""
        stack.bind_listener(self)

    def accept(self) -> Event:
        """Event yielding an established server-side :class:`TcpSocket`."""
        return self.accept_queue.get()

    def handle_segment(self, segment: TcpSegment, packet: Packet) -> None:
        if segment.kind != "syn":
            return
        socket = TcpSocket(
            self.sim,
            self.stack,
            local_ip=packet.dst_ip,
            local_port=packet.dst_port,
            remote_ip=packet.src_ip,
            remote_port=packet.src_port,
            mss=self.mss,
            window=self.window,
            reliable=self.reliable,
            rto=self.rto,
            max_retransmits=self.max_retransmits,
        )
        socket.state = "syn-received"
        socket.express_label = self.express_label
        socket._on_established = self.accept_queue.put
        self.stack.bind_socket(socket)
        socket._emit(TcpSegment(kind="syn-ack"))

    def shutdown(self) -> None:
        self.stack.unbind_listener(self)
