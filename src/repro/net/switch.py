"""OVS-like virtual switches with SDN flow tables.

A switch forwards frames by consulting its :class:`FlowTable` first
(priority-ordered match → actions, exactly the shape of the rules in
the paper's Fig. 3, including ``mod_dst_mac``).  On a table miss it
falls back to self-learning L2 forwarding with flooding, which is how
the instance network behaves before StorM installs steering rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim import Simulator
from repro.net.link import Interface
from repro.net.packet import Packet

#: Wildcard marker in match specifications.
ANY = None

MATCH_FIELDS = (
    "in_port",
    "src_mac",
    "dst_mac",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
)


class Action:
    """Base class for flow-rule actions."""


@dataclass
class Output(Action):
    """Send the frame out of a named switch port."""

    port: str


@dataclass
class ModDstMac(Action):
    """Rewrite the destination MAC (the steering primitive of Fig. 3)."""

    new_mac: str


@dataclass
class Drop(Action):
    """Discard the frame."""


@dataclass
class ToController(Action):
    """Punt the frame to the SDN controller (packet-in)."""


@dataclass
class Normal(Action):
    """Fall through to standard L2 learning/forwarding (OVS ``NORMAL``)."""


@dataclass
class FlowRule:
    """Priority match → action list.  ``None`` fields are wildcards."""

    priority: int = 0
    in_port: Optional[str] = ANY
    src_mac: Optional[str] = ANY
    dst_mac: Optional[str] = ANY
    src_ip: Optional[str] = ANY
    dst_ip: Optional[str] = ANY
    src_port: Optional[int] = ANY
    dst_port: Optional[int] = ANY
    protocol: Optional[str] = ANY
    actions: list[Action] = field(default_factory=list)
    cookie: Optional[str] = None
    hits: int = 0

    def matches(self, packet: Packet, in_port: str) -> bool:
        if self.in_port is not ANY and self.in_port != in_port:
            return False
        for field_name in ("src_mac", "dst_mac", "src_ip", "dst_ip", "src_port", "dst_port", "protocol"):
            want = getattr(self, field_name)
            if want is not ANY and want != getattr(packet, field_name):
                return False
        return True


def cookie_in_family(rule_cookie: Optional[str], cookie: str, family: bool = True) -> bool:
    """True if ``rule_cookie`` is ``cookie`` or (with ``family``) a
    derived cookie ``cookie#…`` (steering generations, quiesce rules)."""
    if rule_cookie is None:
        return False
    if rule_cookie == cookie:
        return True
    return family and rule_cookie.startswith(cookie + "#")


#: Cache-miss marker (a rule can legitimately resolve to ``None``).
_MISS = object()

#: Capacity of the per-flow decision cache.  A pure memo — flushed on
#: every rule change and recomputed on miss — so the cap only bounds
#: steady-state memory: without it the cache grew one entry per flow
#: *ever* switched, O(ever-attached) under fleet churn.
DECISION_CACHE_CAP = 8192


def cookie_root(cookie: Optional[str]) -> Optional[str]:
    """The family root of a cookie: everything before the first ``#``.
    Family membership (:func:`cookie_in_family`) never crosses roots,
    which is what lets rule stores bucket by root and remove a chain's
    rules in O(chain) instead of O(table)."""
    if cookie is None:
        return None
    return cookie.split("#", 1)[0]


class FlowTable:
    """Priority-ordered rule set with cookie-based removal.

    Rules live in an insertion-ordered id map plus a per-cookie-family
    bucket index, so ``remove_by_cookie`` touches only the family's own
    rules — O(chain), not O(table), which is what keeps control-plane
    churn affordable when thousands of chains share one switch.  The
    priority-sorted view (:attr:`rules`) is materialized lazily and
    cached between rule changes.

    Lookups are memoized per *flow*: every header field a rule can
    match on goes into the cache key, so packets of an established
    flow skip the linear rule scan.  The cache is flushed whenever the
    rule set changes and bounded at :data:`DECISION_CACHE_CAP` entries
    (oldest-first eviction, deterministic via dict insertion order).
    """

    def __init__(self):
        self._next_id = 0
        #: id -> rule, insertion-ordered (the stable-sort tiebreak)
        self._live: dict[int, FlowRule] = {}
        #: cookie family root -> ids of its rules, insertion-ordered
        self._by_root: dict[Optional[str], list[int]] = {}
        self._sorted: Optional[list[FlowRule]] = None
        self._decision_cache: dict[tuple, Optional[FlowRule]] = {}
        #: change notification registered by the express path when a
        #: compiled flow depends on this table (see repro.net.express);
        #: any rule change must demote those flows back to packet mode.
        self._x_on_change: Optional[Callable[[], None]] = None

    @property
    def rules(self) -> list[FlowRule]:
        """Priority-descending view; equal priorities keep install
        order (same order the old eager stable sort produced)."""
        if self._sorted is None:
            self._sorted = sorted(self._live.values(), key=lambda r: -r.priority)
        return self._sorted

    def _changed(self) -> None:
        self._sorted = None
        self._decision_cache.clear()
        if self._x_on_change is not None:
            self._x_on_change()

    def install(self, rule: FlowRule) -> None:
        rule_id = self._next_id
        self._next_id = rule_id + 1
        self._live[rule_id] = rule
        self._by_root.setdefault(cookie_root(rule.cookie), []).append(rule_id)
        self._changed()

    def remove_by_cookie(self, cookie: str, family: bool = False) -> int:
        root = cookie_root(cookie)
        ids = self._by_root.get(root)
        if not ids:
            return 0
        keep: list[int] = []
        removed = 0
        live = self._live
        for rule_id in ids:
            if cookie_in_family(live[rule_id].cookie, cookie, family):
                del live[rule_id]
                removed += 1
            else:
                keep.append(rule_id)
        if removed:
            if keep:
                self._by_root[root] = keep
            else:
                del self._by_root[root]
            self._changed()
        return removed

    def lookup(self, packet: Packet, in_port: str) -> Optional[FlowRule]:
        key = (
            in_port,
            packet.src_mac,
            packet.dst_mac,
            packet.src_ip,
            packet.dst_ip,
            packet.src_port,
            packet.dst_port,
            packet.protocol,
        )
        rule = self._decision_cache.get(key, _MISS)
        if rule is _MISS:
            rule = None
            for candidate in self.rules:
                if candidate.matches(packet, in_port):
                    rule = candidate
                    break
            self._note_decision(key, rule)
        if rule is not None:
            rule.hits += 1
        return rule

    def _note_decision(self, key: tuple, rule: Optional[FlowRule]) -> None:
        """Memoize one flow's decision, evicting oldest-first at
        capacity.  Shared with the express path's probe so both modes
        populate (and bound) the cache identically."""
        cache = self._decision_cache
        cache[key] = rule
        if len(cache) > DECISION_CACHE_CAP:
            del cache[next(iter(cache))]

    def __len__(self) -> int:
        return len(self._live)


class Switch:
    """A virtual switch: named ports, a flow table, and L2 learning."""

    def __init__(self, sim: Simulator, name: str, forwarding_delay: float = 5e-6):
        self.sim = sim
        self.name = name
        self.forwarding_delay = forwarding_delay
        self.ports: dict[str, Interface] = {}
        self.flow_table = FlowTable()
        self._mac_table: dict[str, str] = {}  # mac -> port name
        self._port_names: dict[Interface, str] = {}  # reverse of ports
        self.controller: Optional[Callable[["Switch", Packet, str], None]] = None
        self.packets_switched = 0
        #: observability bus hook; None keeps the pipeline branch-free
        #: beyond one identity check per forwarding decision.
        self.obs = None

    # -- wiring ------------------------------------------------------

    def add_port(self, name: str, mac: str = "") -> Interface:
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r} on switch {self.name!r}")
        iface = Interface(f"{self.name}.{name}", mac or f"sw:{self.name}:{name}")
        iface.owner = self
        self.ports[name] = iface
        self._port_names[iface] = name
        return iface

    def remove_port(self, name: str) -> Optional[Interface]:
        """Detach a port (service-VM deprovisioning); returns its
        interface, or None if no such port exists."""
        iface = self.ports.pop(name, None)
        if iface is None:
            return None
        self._port_names.pop(iface, None)
        self._mac_table = {
            mac: port for mac, port in self._mac_table.items() if port != name
        }
        return iface

    def port_of(self, iface: Interface) -> str:
        name = self._port_names.get(iface)
        if name is None:
            raise ValueError(f"interface {iface.name} is not a port of {self.name}")
        return name

    # -- data plane ----------------------------------------------------

    def receive(self, packet: Packet, iface: Interface) -> None:
        in_port = self.port_of(iface)
        self._mac_table[packet.src_mac] = in_port
        self.packets_switched += 1
        packet.record_hop(self.name)
        # Schedule the pipeline directly off a timeout callback — one
        # heap entry per packet instead of a whole Process + bootstrap.
        delay = self.forwarding_delay
        if delay:
            self.sim.timeout(delay).callbacks.append(
                lambda _event: self._apply_pipeline(packet, in_port)
            )
        else:
            # keep the one-tick deferral a zero-delay process used to give
            self.sim.event().succeed().callbacks.append(
                lambda _event: self._apply_pipeline(packet, in_port)
            )

    def _apply_pipeline(self, packet: Packet, in_port: str) -> None:
        rule = self.flow_table.lookup(packet, in_port)
        obs = self.obs
        if obs is not None:
            if rule is None:
                obs.metrics.counter("switch.l2", self.name).inc()
            else:
                obs.metrics.counter("switch.flow_hit", self.name).inc()
                if packet.ctx is not None:
                    packet.ctx.event(
                        "switch.steer", target=self.name, cookie=rule.cookie
                    )
        if rule is None:
            self._l2_forward(packet, in_port)
            return
        for action in rule.actions:
            if isinstance(action, ModDstMac):
                packet.dst_mac = action.new_mac
            elif isinstance(action, Output):
                self._output(packet, action.port)
                return
            elif isinstance(action, Drop):
                if obs is not None:
                    obs.metrics.counter("switch.drop", self.name).inc()
                return
            elif isinstance(action, ToController):
                if self.controller is not None:
                    self.controller(self, packet, in_port)
                return
            elif isinstance(action, Normal):
                self._l2_forward(packet, in_port)
                return
        # Rewrite-only rule (the Fig. 3 style): finish with L2 forwarding
        # toward the (possibly rewritten) destination MAC.
        self._l2_forward(packet, in_port)

    def _l2_forward(self, packet: Packet, in_port: str) -> None:
        known = self._mac_table.get(packet.dst_mac)
        if known is not None and known != in_port:
            self._output(packet, known)
            return
        if known == in_port:
            return  # destination is behind the ingress port: drop
        self._flood(packet, in_port)

    def _flood(self, packet: Packet, in_port: str) -> None:
        for port_name in self.ports:
            if port_name != in_port:
                self._output(packet.copy(), port_name)

    def _output(self, packet: Packet, port_name: str) -> None:
        port = self.ports.get(port_name)
        if port is not None:
            port.send(packet)
