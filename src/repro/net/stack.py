"""Per-node IP stack: L2 filtering, ARP, routing, NAT, IP forwarding.

Every host, VM, gateway, and middle-box owns a :class:`NetworkStack`.
NAT is applied exactly once per node traversal (at PREROUTING for
received packets, at OUTPUT for locally originated ones), mirroring
the iptables hook points StorM programs in the paper.  Middle-boxes
enable ``ip_forward`` — the only in-guest configuration the paper
requires of them.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim import Simulator
from repro.net.link import Interface
from repro.net.nat import NatTable
from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.net.tcp import TcpListener, TcpSocket

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"

#: Filled on first use by :meth:`NetworkStack._deliver_local`.
_TcpSegment = None


class ArpTable:
    """IP→MAC resolution for one L2 domain (one network of Fig. 1)."""

    def __init__(self, name: str):
        self.name = name
        self._entries: dict[str, str] = {}

    def register(self, ip: str, mac: str) -> None:
        self._entries[ip] = mac

    def unregister(self, ip: str) -> None:
        self._entries.pop(ip, None)

    def resolve(self, ip: str) -> Optional[str]:
        return self._entries.get(ip)


@dataclass
class Route:
    """Longest-prefix-match routing entry."""

    network: ipaddress.IPv4Network
    iface: Interface
    via: Optional[str] = None  # next-hop IP; None = on-link

    @property
    def prefixlen(self) -> int:
        return self.network.prefixlen


class Node:
    """Anything with interfaces and an IP stack (host, VM, gateway)."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.interfaces: list[Interface] = []
        #: set by :class:`repro.faults.FaultInjector` while the node is
        #: down; health checks (e.g. the autoscaler) read it.
        self.crashed = False
        self.stack = NetworkStack(sim, self)

    def add_interface(self, iface: Interface, arp: Optional[ArpTable] = None) -> Interface:
        iface.owner = self
        self.interfaces.append(iface)
        self.stack.register_interface(iface, arp)
        return iface

    def receive(self, packet: Packet, iface: Interface) -> None:
        if packet.dst_mac not in (iface.mac, BROADCAST_MAC):
            return  # not addressed to this NIC at L2
        packet.record_hop(self.name)
        self.stack.handle_receive(packet, iface)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class NetworkStack:
    """Routing, NAT, IP forwarding, and TCP demultiplexing for a node."""

    def __init__(self, sim: Simulator, node: Node):
        self.sim = sim
        self.node = node
        self.routes: list[Route] = []
        self.nat = NatTable()
        self.ip_forward = False
        #: Extra per-packet delay when forwarding (software IP path).
        self.forward_delay: float = 0.0
        #: dst_ip -> Route (or None) memo; cleared when routes change.
        self._route_cache: dict[str, Optional[Route]] = {}
        #: cached set of local interface IPs; rebuilt when NICs change.
        self._local_ips: set[str] = set()
        self._arp_by_iface: dict[str, ArpTable] = {}
        self._sockets: dict[tuple[str, int, str, int], "TcpSocket"] = {}
        self._listeners: dict[int, "TcpListener"] = {}
        self.dropped_packets = 0
        #: Optional observer invoked for every packet that reaches the
        #: stack (after the L2 filter).
        self.packet_taps: list[Callable[[Packet, Interface], None]] = []
        #: Optional generator hook run inside the FORWARD path, before a
        #: forwarded packet is re-routed.  This is the passive relay's
        #: netfilter-style attachment point: it can delay (kernel→user
        #: copies, service processing) and mutate the packet in place.
        self.forward_hook: Optional[Callable[[Packet], object]] = None
        self._forward_queue = None
        #: Express-path hooks (:mod:`repro.net.express`): commitment
        #: state for the forward pump (created with the queue), and a
        #: change notification fired when routes change so compiled
        #: flows demote.  Both stay None when express mode is off.
        self._xfwd = None
        self._x_on_change: Optional[Callable[[], None]] = None
        #: Obs bus (wired by ``repro.obs.instrument``) — lets the TCP
        #: hot path gate per-packet context copies on ``bus.enabled``.
        self.obs_bus = None

    # -- configuration -------------------------------------------------

    def register_interface(self, iface: Interface, arp: Optional[ArpTable]) -> None:
        if iface.ip is not None:
            self._local_ips.add(iface.ip)
        if arp is not None:
            self._arp_by_iface[iface.name] = arp
            if iface.ip is not None:
                arp.register(iface.ip, iface.mac)

    def add_route(self, cidr: str, iface: Interface, via: Optional[str] = None) -> None:
        self.routes.append(Route(ipaddress.ip_network(cidr), iface, via))
        self.routes.sort(key=lambda r: -r.prefixlen)
        self._route_cache.clear()
        if self._x_on_change is not None:
            self._x_on_change()

    def local_ips(self) -> set[str]:
        self._local_ips = {i.ip for i in self.node.interfaces if i.ip is not None}
        return self._local_ips

    #: Globally unique ephemeral ports: source ports identify flows at
    #: gateways and in steering rules, so cross-host collisions (two
    #: stacks picking 49152) would alias flows.  Real deployments rely on
    #: the (ip, port) pair; a shared counter is the simulation shortcut.
    _ephemeral_port_counter = 49152

    def allocate_port(self) -> int:
        port = NetworkStack._ephemeral_port_counter
        NetworkStack._ephemeral_port_counter += 1
        return port

    # -- TCP demux -----------------------------------------------------

    def bind_socket(self, socket: "TcpSocket") -> None:
        self._sockets[socket.demux_key()] = socket

    def unbind_socket(self, socket: "TcpSocket") -> None:
        self._sockets.pop(socket.demux_key(), None)

    def bind_listener(self, listener: "TcpListener") -> None:
        if listener.port in self._listeners:
            raise ValueError(f"port {listener.port} already bound on {self.node.name}")
        self._listeners[listener.port] = listener

    def unbind_listener(self, listener: "TcpListener") -> None:
        self._listeners.pop(listener.port, None)

    # -- data plane ------------------------------------------------------

    def handle_receive(self, packet: Packet, iface: Interface) -> None:
        if self.packet_taps:
            for tap in self.packet_taps:
                tap(packet, iface)
        self.nat.translate(packet, hook="prerouting")
        if packet.dst_ip in self._local_ips:
            self._deliver_local(packet)
            return
        if self.ip_forward:
            queue = self._forward_queue
            if queue is None:
                from repro.sim import Store

                queue = self._forward_queue = Store(self.sim)
                express = self.sim.express
                if express is not None:
                    self._xfwd = express.elem_state()
                self.sim.process(self._forward_pump(), name=f"fwd:{self.node.name}")
            state = self._xfwd
            if state is not None:
                # Commit the forward pump's occupancy at arrival time
                # (see Link.transmit for the discipline).
                now = self.sim.now
                busy = state.busy
                start = busy if busy > now else now
                state.busy = start + self.forward_delay
                state.pending.append(start)
            queue.put(packet)
            return
        self.dropped_packets += 1

    def _forward_pump(self):
        """FIFO software-forwarding path (single kernel thread, like the
        virtio/netfilter path the paper measures)."""
        state = self._xfwd
        while True:
            packet = yield self._forward_queue.get()
            if state is not None:
                start = state.pending.popleft()
                if start > self.sim.now:
                    yield self.sim.timeout(start - self.sim.now)
            if self.forward_delay:
                yield self.sim.timeout(self.forward_delay)
            if self.forward_hook is not None:
                yield from self.forward_hook(packet)
            self.route_and_send(packet)

    def send_ip(self, packet: Packet) -> None:
        """Transmit a locally generated packet (OUTPUT NAT, then route)."""
        self.nat.translate(packet, hook="output")
        self.route_and_send(packet)

    def route_and_send(self, packet: Packet) -> None:
        route = self._lookup_route(packet.dst_ip)
        if route is None:
            self.dropped_packets += 1
            return
        next_hop_ip = route.via or packet.dst_ip
        arp = self._arp_by_iface.get(route.iface.name)
        dst_mac = arp.resolve(next_hop_ip) if arp is not None else None
        if dst_mac is None:
            self.dropped_packets += 1
            return
        packet.src_mac = route.iface.mac
        packet.dst_mac = dst_mac
        route.iface.send(packet)

    def _lookup_route(self, dst_ip: str) -> Optional[Route]:
        try:
            return self._route_cache[dst_ip]
        except KeyError:
            pass
        address = ipaddress.ip_address(dst_ip)
        found = None
        for route in self.routes:  # sorted by prefix length, longest first
            if address in route.network:
                found = route
                break
        self._route_cache[dst_ip] = found
        return found

    def _deliver_local(self, packet: Packet) -> None:
        global _TcpSegment
        if _TcpSegment is None:  # deferred import to avoid a cycle
            from repro.net.tcp import TcpSegment as _TcpSegment  # noqa: F811

        segment = packet.payload
        if not isinstance(segment, _TcpSegment):
            self.dropped_packets += 1
            return
        key = (packet.dst_ip, packet.dst_port, packet.src_ip, packet.src_port)
        socket = self._sockets.get(key)
        if socket is not None:
            socket.handle_segment(segment, packet)
            return
        listener = self._listeners.get(packet.dst_port)
        if listener is not None:
            listener.handle_segment(segment, packet)
            return
        self.dropped_packets += 1
