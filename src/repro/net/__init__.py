"""Networking substrate: links, switches, NAT, SDN, and TCP.

Models the two-network datacenter of the paper's Figure 1: an
*instance network* built from OVS-like SDN virtual switches (one per
compute host, interconnected through a fabric), and a flat *storage
network*.  Packets are forwarded hop-by-hop through real flow-table
and NAT lookups so that StorM's splicing and steering rules are
executed rather than assumed.
"""

from repro.net.packet import FiveTuple, Packet
from repro.net.link import Interface, Link
from repro.net.switch import (
    Drop,
    FlowRule,
    FlowTable,
    ModDstMac,
    Output,
    Switch,
    ToController,
)
from repro.net.nat import ConnTrack, NatRule, NatTable
from repro.net.stack import ArpTable, NetworkStack, Node
from repro.net.tcp import TcpListener, TcpSegment, TcpSocket
from repro.net.sdn import SdnController
from repro.net.express import ExpressManager

__all__ = [
    "ArpTable",
    "ConnTrack",
    "Drop",
    "ExpressManager",
    "FiveTuple",
    "FlowRule",
    "FlowTable",
    "Interface",
    "Link",
    "ModDstMac",
    "NatRule",
    "NatTable",
    "NetworkStack",
    "Node",
    "Output",
    "Packet",
    "SdnController",
    "Switch",
    "TcpListener",
    "TcpSegment",
    "TcpSocket",
    "ToController",
]
