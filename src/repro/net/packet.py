"""The packet model.

One flat header set (L2 + L3 + L4 merged) — the paper's NAT and SDN
rules match on exactly these fields (Fig. 3): MACs, IPs, ports,
protocol.  ``payload`` carries a higher-layer object (a TCP segment);
``size`` is the total on-wire size in bytes and is what links charge
for serialization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, NamedTuple

#: L2/L3/L4 header bytes charged on every packet (Ethernet+IP+TCP).
HEADER_BYTES = 66

_packet_ids = itertools.count(1)


class FiveTuple(NamedTuple):
    """Connection identity as seen by NAT and attribution."""

    protocol: str
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int

    def reversed(self) -> "FiveTuple":
        return FiveTuple(self.protocol, self.dst_ip, self.dst_port, self.src_ip, self.src_port)


@dataclass(slots=True)
class Packet:
    """A frame in flight.  Mutable: NAT and ``mod_dst_mac`` rewrite it."""

    src_mac: str
    dst_mac: str
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str = "tcp"
    size: int = HEADER_BYTES
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Names of nodes traversed, appended by each hop (used by tests and
    #: the steering verifier to prove which middle-boxes saw the flow).
    trace: list[str] = field(default_factory=list)
    #: Trace context (:class:`repro.obs.TraceContext`) propagated from
    #: the message this packet carries — joins per-hop events to the
    #: request's span tree.  None whenever instrumentation is off.
    ctx: Any = field(default=None, repr=False, compare=False)

    @property
    def five_tuple(self) -> FiveTuple:
        return FiveTuple(self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    def record_hop(self, node_name: str) -> None:
        self.trace.append(node_name)
        ctx = self.ctx
        if ctx is not None:
            ctx.hop(node_name, self)

    def copy(self) -> "Packet":
        """Independent copy (fresh id, shared payload object, copied trace)."""
        return replace(
            self,
            packet_id=next(_packet_ids),
            trace=list(self.trace),
        )

    def __repr__(self) -> str:  # compact for debugging
        return (
            f"Packet#{self.packet_id}({self.protocol} "
            f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port} "
            f"dmac={self.dst_mac} {self.size}B)"
        )
