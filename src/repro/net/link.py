"""Interfaces and point-to-point links.

A :class:`Link` joins two :class:`Interface` objects.  Each direction
serializes packets (``size / bandwidth``), then delays them by the
propagation/processing latency, then delivers to the far interface's
owner.  ``per_packet_overhead`` models fixed per-frame cost — for VM
virtual interfaces this is the single-threaded virtio copy path the
paper identifies as the dominant intra-host cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim import Simulator, Store
from repro.net.packet import Packet

if TYPE_CHECKING:
    from repro.net.stack import Node

#: 1 GbE in bytes/second, the paper's testbed NICs.
GIGABIT_BPS = 125_000_000


class Interface:
    """A NIC: a named attachment point with a MAC and optional IP."""

    def __init__(self, name: str, mac: str, ip: Optional[str] = None):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.owner: Optional["Node"] = None
        self.link: Optional[Link] = None
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    def send(self, packet: Packet) -> None:
        """Transmit onto the attached link (drops if unplugged)."""
        if self.link is None:
            return
        self.tx_packets += 1
        self.tx_bytes += packet.size
        self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet arrives at this interface."""
        self.rx_packets += 1
        self.rx_bytes += packet.size
        if self.owner is not None:
            self.owner.receive(packet, self)

    def __repr__(self) -> str:
        return f"Interface({self.name}, mac={self.mac}, ip={self.ip})"


class Link:
    """Full-duplex link: independent serialization per direction."""

    def __init__(
        self,
        sim: Simulator,
        a: Interface,
        b: Interface,
        bandwidth: float = GIGABIT_BPS,
        latency: float = 50e-6,
        per_packet_overhead: float = 0.0,
    ):
        if bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth = bandwidth
        self.latency = latency
        self.per_packet_overhead = per_packet_overhead
        #: installed by :class:`repro.faults.FaultInjector` — when
        #: non-None, every packet is judged (drop / corrupt / delay /
        #: link-down) before delivery.  ``None`` keeps the fast path
        #: branch-free beyond one identity check.
        self.faults = None
        #: observability bus hook (same zero-cost-off pattern): when
        #: non-None, per-packet transmit/drop counters are recorded.
        self.obs = None
        self.obs_name = f"{a.name}<->{b.name}"
        a.link = self
        b.link = self
        self._queues = {a: Store(sim), b: Store(sim)}
        #: express-path commitment states, one per direction (see
        #: :mod:`repro.net.express`); ``None`` when express mode is off,
        #: keeping ``transmit``/``_pump`` branch-free beyond one check.
        express = sim.express
        self._xstates = (
            {a: express.elem_state(), b: express.elem_state()}
            if express is not None
            else None
        )
        sim.process(self._pump(a, b), name=f"link:{a.name}->{b.name}")
        sim.process(self._pump(b, a), name=f"link:{b.name}->{a.name}")

    def transmit(self, from_iface: Interface, packet: Packet) -> None:
        if from_iface not in self._queues:
            raise ValueError("interface not on this link")
        xstates = self._xstates
        if xstates is not None:
            # Commit this direction's wire occupancy at true arrival
            # time so express flows sharing the link interleave exactly;
            # the pump aligns to the committed start (same float ops as
            # its own serialization arithmetic).
            state = xstates[from_iface]
            now = self.sim.now
            busy = state.busy
            start = busy if busy > now else now
            state.busy = start + (
                packet.size / self.bandwidth + self.per_packet_overhead
            )
            state.pending.append(start)
        self._queues[from_iface].put(packet)

    def other_end(self, iface: Interface) -> Interface:
        return self.b if iface is self.a else self.a

    def _pump(self, src: Interface, dst: Interface):
        """Serialize queued packets one at a time, then deliver after latency."""
        queue = self._queues[src]
        deliver = dst.deliver
        timeout = self.sim.timeout
        xstate = None if self._xstates is None else self._xstates[src]
        while True:
            packet: Packet = yield queue.get()
            if xstate is not None:
                # Align to the start committed in transmit().  With no
                # express claims interposed the committed start equals
                # the pickup time exactly and this never fires; behind
                # an express claim it waits out the claimed occupancy.
                start = xstate.pending.popleft()
                if start > self.sim.now:
                    yield timeout(start - self.sim.now)
            obs = self.obs
            if obs is not None:
                metrics = obs.metrics
                metrics.counter("link.tx", self.obs_name).inc()
                metrics.counter("link.tx_bytes", self.obs_name).inc(packet.size)
            faults = self.faults
            if faults is not None:
                extra = faults.judge(packet)
                if extra < 0.0:
                    if obs is not None:
                        obs.metrics.counter("link.drop", self.obs_name).inc()
                    # dropped — but the sender still pays the wire time
                    # (the loss happens at the far end of the pipe)
                    yield timeout(
                        packet.size / self.bandwidth + self.per_packet_overhead
                    )
                    continue
                yield timeout(packet.size / self.bandwidth + self.per_packet_overhead)
                timeout(self.latency + extra).callbacks.append(
                    lambda _event, packet=packet: deliver(packet)
                )
                continue
            serialize = packet.size / self.bandwidth + self.per_packet_overhead
            yield timeout(serialize)
            # Propagation happens in parallel with the next serialization:
            # one timeout callback per packet, no per-packet Process.
            timeout(self.latency).callbacks.append(
                lambda _event, packet=packet: deliver(packet)
            )
