"""Centralized SDN controller.

StorM's forwarding service: one controller knows every virtual switch
in the instance network and installs/removes flow rules on them (via
per-host monitors in the paper; direct method calls here — the
control-plane latency is irrelevant to the evaluated data path).
Rules are tagged with cookies so a whole steering chain can be torn
down atomically when a tenant removes a middle-box.

Cookies form *families*: ``storm:vm1:vol1`` owns every derived cookie
``storm:vm1:vol1#g2`` / ``…#quiesce`` that steering generations and
quiesce rules append.  Family-scoped removal/lookup (the default) is
what lets a crashed controller's recovery and the reconciler sweep a
flow's entire rule state without enumerating generations.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.net.switch import FlowRule, Switch, cookie_in_family, cookie_root


class SdnController:
    """Installs flow rules on registered switches, cookie-scoped.

    The controller's install journal is bucketed by cookie family root
    (like the switch tables themselves), so removing or listing one
    chain's rules costs O(chain) — the journal never has to be rebuilt
    wholesale, no matter how many other chains are live.
    """

    def __init__(self, name: str = "storm-sdn"):
        self.name = name
        self._switches: dict[str, Switch] = {}
        #: install journal: family root -> [(seq, switch, rule), ...]
        self._journal: dict[Optional[str], list[tuple[int, str, FlowRule]]] = {}
        self._journal_seq = 0
        #: express-path demotion hook (wired by the cloud controller
        #: when express mode is on): called with a reason string on
        #: every rule change, so promoted flows fall back to packet
        #: mode before any new steering generation can take effect.
        self.express_notify: Optional[Callable[[str], None]] = None

    @property
    def installed_rules(self) -> list[tuple[str, FlowRule]]:
        """The journal flattened in install order (compat view)."""
        entries = [e for bucket in self._journal.values() for e in bucket]
        entries.sort(key=lambda e: e[0])
        return [(switch_name, rule) for _seq, switch_name, rule in entries]

    def register_switch(self, switch: Switch) -> None:
        if switch.name in self._switches:
            raise ValueError(f"switch {switch.name!r} already registered")
        self._switches[switch.name] = switch

    def switch(self, name: str) -> Switch:
        try:
            return self._switches[name]
        except KeyError:
            raise KeyError(f"unknown switch {name!r}; registered: {sorted(self._switches)}")

    def install_rule(self, switch_name: str, rule: FlowRule) -> None:
        if self.express_notify is not None:
            self.express_notify(f"sdn-install:{switch_name}")
        self.switch(switch_name).flow_table.install(rule)
        seq = self._journal_seq
        self._journal_seq = seq + 1
        self._journal.setdefault(cookie_root(rule.cookie), []).append(
            (seq, switch_name, rule)
        )

    def remove_by_cookie(
        self, cookie: str, switch_name: Optional[str] = None, family: bool = True
    ) -> int:
        """Remove all rules tagged ``cookie`` (optionally on one switch).

        ``family=True`` (default) also removes derived cookies
        (``cookie#…``); ``family=False`` matches exactly — used to
        retire a single steering generation.
        """
        if self.express_notify is not None:
            self.express_notify(f"sdn-remove:{cookie}")
        removed = 0
        # Sweep every switch table, not just the journaled ones — the
        # journal can drift from table truth (the reconciler's whole
        # premise); a per-table miss is an O(1) bucket lookup anyway.
        targets = [self.switch(switch_name)] if switch_name else list(self._switches.values())
        for switch in targets:
            removed += switch.flow_table.remove_by_cookie(cookie, family=family)
        root = cookie_root(cookie)
        bucket = self._journal.get(root)
        if bucket:
            kept = [
                entry
                for entry in bucket
                if not (
                    cookie_in_family(entry[2].cookie, cookie, family)
                    and (switch_name is None or entry[1] == switch_name)
                )
            ]
            if kept:
                self._journal[root] = kept
            else:
                del self._journal[root]
        return removed

    def rules_for_cookie(self, cookie: str, family: bool = True) -> list[tuple[str, FlowRule]]:
        bucket = self._journal.get(cookie_root(cookie), [])
        return [
            (switch_name, rule)
            for _seq, switch_name, rule in bucket
            if cookie_in_family(rule.cookie, cookie, family)
        ]

    def iter_rules(self) -> Iterator[tuple[str, FlowRule]]:
        """Every rule actually installed in the switch tables — the
        ground truth the reconciler audits (``installed_rules`` is only
        the controller's journal and can drift from it)."""
        for name, switch in self._switches.items():
            for rule in switch.flow_table.rules:
                yield name, rule
