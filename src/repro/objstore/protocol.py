"""Object-store wire protocol (HTTP-shaped, binary-simple)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

OBJECT_PORT = 8080
HEADER = 64  # request/response framing bytes

_request_ids = itertools.count(1)


def next_request_id() -> int:
    return next(_request_ids)


@dataclass
class PutRequest:
    bucket: str
    key: str
    size: int
    data: Optional[bytes] = None
    request_id: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER + len(self.bucket) + len(self.key) + self.size


@dataclass
class GetRequest:
    bucket: str
    key: str
    request_id: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER + len(self.bucket) + len(self.key)


@dataclass
class DeleteRequest:
    bucket: str
    key: str
    request_id: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER + len(self.bucket) + len(self.key)


@dataclass
class ListRequest:
    bucket: str
    request_id: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER + len(self.bucket)


@dataclass
class ObjectResponse:
    request_id: int
    status: str  # "ok" | "not-found" | "error"
    size: int = 0
    data: Optional[bytes] = None
    keys: Optional[list[str]] = None
    #: object identity, so positional services (encryption) can derive
    #: a deterministic tweak for GET payloads
    bucket: str = ""
    key: str = ""

    @property
    def wire_size(self) -> int:
        listing = sum(len(k) for k in self.keys) if self.keys else 0
        return HEADER + self.size + listing
