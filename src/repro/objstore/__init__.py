"""Object-storage substrate (Swift-like).

The paper notes StorM "is equally applicable to other storage systems
such as object storage" (§II-A); this package makes that claim
concrete.  A bucket/key object server runs on a storage host (backed
by a log-structured volume layout), compute hosts attach to it the
way they attach iSCSI volumes (a host-side client connection on the
storage network) — and the *same* StorM splicing, steering, and
relays service the flow, just on the object port.
"""

from repro.objstore.protocol import (
    OBJECT_PORT,
    DeleteRequest,
    GetRequest,
    ListRequest,
    ObjectResponse,
    PutRequest,
)
from repro.objstore.server import ObjectStoreServer
from repro.objstore.client import ObjectStoreClient, ObjectStoreSession

__all__ = [
    "DeleteRequest",
    "GetRequest",
    "ListRequest",
    "OBJECT_PORT",
    "ObjectResponse",
    "ObjectStoreClient",
    "ObjectStoreServer",
    "ObjectStoreSession",
    "PutRequest",
]
