"""Host-side object-store client.

Like the iSCSI initiator, the client runs on the *compute host* and
connects over the storage network, so StorM's splicing (host NAT →
gateways → steered middle-boxes) applies to object flows unchanged —
just on the object port.
"""

from __future__ import annotations

from typing import Optional

from repro.net.stack import NetworkStack
from repro.net.tcp import EOF, RESET, TcpSocket
from repro.objstore.protocol import (
    DeleteRequest,
    GetRequest,
    ListRequest,
    OBJECT_PORT,
    PutRequest,
    next_request_id,
)
from repro.sim import Event, Simulator


class ObjectStoreDead(Exception):
    """The object connection was reset."""


class ObjectStoreSession:
    """One connection to one object server."""

    def __init__(self, sim: Simulator, socket: TcpSocket):
        self.sim = sim
        self.socket = socket
        self.local_port = socket.local_port
        self.alive = True
        self._pending: dict[int, Event] = {}
        sim.process(self._receiver(), name="objstore-rx")

    def _issue(self, request) -> Event:
        if not self.alive:
            raise ObjectStoreDead("session is down")
        done = self.sim.event()
        self._pending[request.request_id] = done
        self.socket.send(request, request.wire_size)
        return done

    def put(self, bucket: str, key: str, data: Optional[bytes] = None, size: Optional[int] = None) -> Event:
        if data is None and size is None:
            raise ValueError("put needs data or size")
        size = len(data) if data is not None else size
        return self._issue(PutRequest(bucket, key, size, data, next_request_id()))

    def get(self, bucket: str, key: str) -> Event:
        return self._issue(GetRequest(bucket, key, next_request_id()))

    def delete(self, bucket: str, key: str) -> Event:
        return self._issue(DeleteRequest(bucket, key, next_request_id()))

    def list(self, bucket: str) -> Event:
        return self._issue(ListRequest(bucket, next_request_id()))

    def close(self) -> None:
        self.alive = False
        self.socket.close()

    def _receiver(self):
        while True:
            got = yield self.socket.recv()
            if got is RESET or got is EOF:
                self.alive = False
                pending, self._pending = self._pending, {}
                for event in pending.values():
                    if not event.triggered:
                        event.fail(ObjectStoreDead("connection lost"))
                return
            response, _size = got
            event = self._pending.pop(response.request_id, None)
            if event is not None:
                event.succeed(response)


class ObjectStoreClient:
    """Factory for object sessions from one compute host."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        local_ip: str,
        mss: int = 4096,
        window: int = 65536,
    ):
        self.sim = sim
        self.stack = stack
        self.local_ip = local_ip
        self.mss = mss
        self.window = window
        self.sessions: list[ObjectStoreSession] = []

    def connect(self, server_ip: str, port: int = OBJECT_PORT):
        """Process: returns an established ObjectStoreSession."""
        socket = TcpSocket(
            self.sim,
            self.stack,
            local_ip=self.local_ip,
            local_port=self.stack.allocate_port(),
            mss=self.mss,
            window=self.window,
        )
        yield socket.connect(server_ip, port)
        session = ObjectStoreSession(self.sim, socket)
        # end-to-end probe (like iSCSI's login): proves the whole path —
        # including any spliced middle-box chain — is established before
        # the connect returns.  StorM's atomic attach depends on this.
        probe = yield session.list("__connect_probe__")
        if probe.status != "ok":
            raise ObjectStoreDead(f"connection probe failed: {probe.status}")
        self.sessions.append(session)
        return session
