"""The object server: bucket/key store over a log-structured volume.

Objects are appended to a backing volume (block-aligned extents, an
in-memory index) so every PUT/GET pays realistic disk time; deletes
drop the index entry (space is compacted offline, as in real
log-structured stores — not modeled).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockdev import Volume
from repro.fs.layout import BLOCK_SIZE
from repro.net.stack import NetworkStack
from repro.net.tcp import ConnectionReset, EOF, RESET, TcpListener, TcpSocket
from repro.objstore.protocol import (
    DeleteRequest,
    GetRequest,
    ListRequest,
    OBJECT_PORT,
    ObjectResponse,
    PutRequest,
)
from repro.sim import Simulator


@dataclass
class _Extent:
    offset: int
    size: int  # true object size (extent is block-aligned)


class ObjectStoreServer:
    """Listens on the object port; serves PUT/GET/DELETE/LIST."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        ip: str,
        volume: Volume,
        port: int = OBJECT_PORT,
        cpu=None,
        mss: int = 4096,
        window: int = 65536,
    ):
        self.sim = sim
        self.volume = volume
        self.cpu = cpu
        self.listener = TcpListener(sim, stack, ip, port, mss=mss, window=window)
        self._index: dict[tuple[str, str], _Extent] = {}
        self._log_head = 0
        self.requests_served = 0
        sim.process(self._accept_loop(), name=f"objstore:{ip}")

    # -- data plane ---------------------------------------------------

    def _accept_loop(self):
        while True:
            socket: TcpSocket = yield self.listener.accept()
            self.sim.process(self._serve(socket))

    def _serve(self, socket: TcpSocket):
        while True:
            got = yield socket.recv()
            if got is RESET or got is EOF:
                return
            request, _size = got
            self.sim.process(self._execute(socket, request))

    def _execute(self, socket: TcpSocket, request):
        self.requests_served += 1
        if self.cpu is not None:
            yield from self.cpu.consume(20e-6)
        if isinstance(request, PutRequest):
            response = yield from self._put(request)
        elif isinstance(request, GetRequest):
            response = yield from self._get(request)
        elif isinstance(request, DeleteRequest):
            response = self._delete(request)
        elif isinstance(request, ListRequest):
            response = self._list(request)
        else:
            response = ObjectResponse(getattr(request, "request_id", 0), "error")
        try:
            socket.send(response, response.wire_size)
        except ConnectionReset:
            pass

    def _aligned(self, size: int) -> int:
        return max(BLOCK_SIZE, (size + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE)

    def _put(self, request: PutRequest):
        extent_size = self._aligned(request.size)
        if self._log_head + extent_size > self.volume.size:
            return ObjectResponse(request.request_id, "error")
        offset = self._log_head
        self._log_head += extent_size
        data = None
        if request.data is not None:
            data = request.data.ljust(extent_size, b"\x00")
        yield from self.volume.write(offset, extent_size, data)
        self._index[(request.bucket, request.key)] = _Extent(offset, request.size)
        return ObjectResponse(
            request.request_id, "ok", bucket=request.bucket, key=request.key
        )

    def _get(self, request: GetRequest):
        extent = self._index.get((request.bucket, request.key))
        if extent is None:
            return ObjectResponse(request.request_id, "not-found")
        raw = yield from self.volume.read(extent.offset, self._aligned(extent.size))
        return ObjectResponse(
            request.request_id,
            "ok",
            size=extent.size,
            data=raw[: extent.size] if raw is not None else None,
            bucket=request.bucket,
            key=request.key,
        )

    def _delete(self, request: DeleteRequest) -> ObjectResponse:
        extent = self._index.pop((request.bucket, request.key), None)
        status = "ok" if extent is not None else "not-found"
        return ObjectResponse(request.request_id, status)

    def _list(self, request: ListRequest) -> ObjectResponse:
        keys = sorted(k for b, k in self._index if b == request.bucket)
        return ObjectResponse(request.request_id, "ok", keys=keys)
