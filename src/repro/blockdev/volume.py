"""Volumes and LVM-like volume groups.

A :class:`VolumeGroup` carves a physical :class:`~repro.blockdev.disk.
Disk` into logical :class:`Volume` extents, the way the paper's Cinder
deployment creates volume groups from one 1 TB physical volume.
"""

from __future__ import annotations

import itertools

from repro.blockdev.disk import BLOCK_SIZE, Disk

_volume_ids = itertools.count(1)


class Volume:
    """A contiguous logical extent of a disk."""

    def __init__(self, disk: Disk, name: str, base_offset: int, size: int):
        if base_offset % BLOCK_SIZE or size % BLOCK_SIZE:
            raise ValueError("volume geometry must be block-aligned")
        self.disk = disk
        self.name = name
        self.base_offset = base_offset
        self.size = size
        self.volume_id = next(_volume_ids)
        #: iSCSI qualified name, assigned when exported by a target.
        self.iqn: str | None = None

    def _translate(self, offset: int, length: int) -> int:
        if offset < 0 or offset + length > self.size:
            raise ValueError(
                f"I/O beyond volume {self.name} end ({offset}+{length} > {self.size})"
            )
        return self.base_offset + offset

    def read(self, offset: int, length: int):
        """Simulated read (generator); returns the bytes."""
        return self.disk.submit("read", self._translate(offset, length), length)

    def write(self, offset: int, length: int, data: bytes | None = None):
        """Simulated write (generator)."""
        return self.disk.submit("write", self._translate(offset, length), length, data)

    def read_sync(self, offset: int, length: int) -> bytes:
        return self.disk.read_sync(self._translate(offset, length), length)

    def write_sync(self, offset: int, data: bytes) -> None:
        self.disk.write_sync(self._translate(offset, len(data)), data)

    def transform_sync(self, fn) -> int:
        """Rewrite every *materialized* block as ``fn(volume_offset,
        data) -> data`` (offline re-encryption of an existing image;
        untouched/sparse space is left alone).  Returns blocks changed."""
        first = self.base_offset // BLOCK_SIZE
        last = (self.base_offset + self.size) // BLOCK_SIZE
        changed = 0
        for block_index in sorted(self.disk._blocks):
            if first <= block_index < last:
                volume_offset = block_index * BLOCK_SIZE - self.base_offset
                data = self.disk._blocks[block_index]
                self.disk._blocks[block_index] = bytes(fn(volume_offset, data))
                changed += 1
        return changed

    def __repr__(self) -> str:
        return f"Volume({self.name}, {self.size // (1024 * 1024)} MiB)"


class VolumeGroup:
    """Sequential extent allocator over one physical disk."""

    def __init__(self, name: str, disk: Disk):
        self.name = name
        self.disk = disk
        self._next_offset = 0
        self.volumes: dict[str, Volume] = {}

    @property
    def free_bytes(self) -> int:
        return self.disk.capacity - self._next_offset

    def create_volume(self, name: str, size: int) -> Volume:
        if name in self.volumes:
            raise ValueError(f"volume {name!r} already exists in group {self.name!r}")
        if size % BLOCK_SIZE:
            raise ValueError(f"volume size must be a multiple of {BLOCK_SIZE}")
        if size > self.free_bytes:
            raise ValueError(
                f"volume group {self.name!r} out of space "
                f"({size} requested, {self.free_bytes} free)"
            )
        volume = Volume(self.disk, name, self._next_offset, size)
        self._next_offset += size
        self.volumes[name] = volume
        return volume

    def delete_volume(self, name: str) -> None:
        # Space is not reclaimed (sequential allocator) — matches how the
        # benchmarks use volumes (create once per scenario).
        self.volumes.pop(name)
