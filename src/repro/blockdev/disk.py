"""A simulated direct-attached disk.

Service time = fixed access latency (+ a seek penalty when the request
is not sequential with the previous one) + transfer at the device's
bandwidth.  A queue-depth resource serializes requests like a real
device queue.  Contents are stored sparsely at :data:`BLOCK_SIZE`
granularity; unwritten space reads back as zeros.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Resource, Simulator

BLOCK_SIZE = 4096

#: Calibrated to the paper's 1 TB SATA disk: ~150 MB/s streaming,
#: short access latency once the request is at the head of the queue.
DEFAULT_BANDWIDTH = 150_000_000
DEFAULT_ACCESS_LATENCY = 100e-6
DEFAULT_SEEK_PENALTY = 400e-6


class DiskIOError(Exception):
    """A medium error: the device failed the request after the access
    attempt (injected by :mod:`repro.faults`)."""


@dataclass
class DiskStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    errors: int = 0


class Disk:
    """One spindle with a FIFO device queue."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity: int,
        bandwidth: float = DEFAULT_BANDWIDTH,
        access_latency: float = DEFAULT_ACCESS_LATENCY,
        seek_penalty: float = DEFAULT_SEEK_PENALTY,
        queue_depth: int = 1,
    ):
        if capacity % BLOCK_SIZE:
            raise ValueError(f"capacity must be a multiple of {BLOCK_SIZE}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.bandwidth = bandwidth
        self.access_latency = access_latency
        self.seek_penalty = seek_penalty
        self.queue_depth = queue_depth
        self._queue = Resource(sim, capacity=queue_depth)
        self._blocks: dict[int, bytes] = {}
        self._last_end_offset = 0
        self.stats = DiskStats()
        #: fault-injection hook: ``hook(op, offset, length) -> bool``;
        #: True fails the I/O with :class:`DiskIOError` after the
        #: simulated access time.  ``None`` (the default) is free.
        self.fault_hook = None
        #: observability bus hook: records a per-I/O service-time
        #: histogram scoped by disk name.  ``None`` (the default) is free.
        self.obs = None

    def set_queue_depth(self, depth: int) -> None:
        """Replace the device queue (only while idle) — used to model a
        cache-backed target that services requests in parallel."""
        if self._queue.count or self._queue.waiting:
            raise RuntimeError("cannot resize a busy device queue")
        self.queue_depth = depth
        self._queue = Resource(self.sim, capacity=depth)

    # -- simulated I/O ---------------------------------------------------

    def submit(self, op: str, offset: int, length: int, data: bytes | None = None):
        """Generator process performing one I/O; returns bytes for reads."""
        self._check_bounds(op, offset, length, data)
        grant = self._queue.request()
        yield grant
        try:
            service = self.access_latency + length / self.bandwidth
            if offset != self._last_end_offset:
                service += self.seek_penalty
            self._last_end_offset = offset + length
            self.stats.busy_time += service
            if self.obs is not None:
                self.obs.metrics.histogram("disk.service_time", self.name).observe(
                    service
                )
            yield self.sim.timeout(service)
            if self.fault_hook is not None and self.fault_hook(op, offset, length):
                self.stats.errors += 1
                raise DiskIOError(f"{op} error at offset {offset} on {self.name}")
            if op == "write":
                self.stats.writes += 1
                self.stats.bytes_written += length
                if data is not None:
                    self._store(offset, data)
                return None
            self.stats.reads += 1
            self.stats.bytes_read += length
            return self._load(offset, length)
        finally:
            self._queue.release(grant)

    # -- synchronous content access (no simulated time; used by tooling
    # like mkfs and the dumpe2fs-style layout dump) ------------------------

    def read_sync(self, offset: int, length: int) -> bytes:
        self._check_bounds("read", offset, length, None)
        return self._load(offset, length)

    def write_sync(self, offset: int, data: bytes) -> None:
        self._check_bounds("write", offset, len(data), data)
        self._store(offset, data)

    # -- internals ------------------------------------------------------

    def _check_bounds(self, op: str, offset: int, length: int, data: bytes | None) -> None:
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if offset % BLOCK_SIZE or length % BLOCK_SIZE:
            raise ValueError(
                f"unaligned I/O (offset={offset}, length={length}); "
                f"must be {BLOCK_SIZE}-aligned"
            )
        if length <= 0:
            raise ValueError("length must be positive")
        if offset < 0 or offset + length > self.capacity:
            raise ValueError(f"I/O beyond device end ({offset}+{length} > {self.capacity})")
        if data is not None and len(data) != length:
            raise ValueError("data length mismatch")

    def _store(self, offset: int, data: bytes) -> None:
        first = offset // BLOCK_SIZE
        for i in range(len(data) // BLOCK_SIZE):
            self._blocks[first + i] = bytes(data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE])

    def _load(self, offset: int, length: int) -> bytes:
        first = offset // BLOCK_SIZE
        zero = bytes(BLOCK_SIZE)
        return b"".join(
            self._blocks.get(first + i, zero) for i in range(length // BLOCK_SIZE)
        )
