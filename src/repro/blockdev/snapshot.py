"""Copy-on-write volume snapshots (the Cinder feature).

A :class:`SnapshotVolume` captures a volume's state at creation time:
reads hit the snapshot's private copies for blocks the origin has
since overwritten, and fall through to the origin otherwise.  The
origin volume is wrapped so its writes preserve old block contents
into every active snapshot first (copy-on-write).

Snapshots present the same read interface as volumes, so they can be
exported over iSCSI, fsck'd, or mounted read-only — e.g. to let a
monitor middle-box do forensics on a point-in-time image while the
tenant VM keeps writing.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.blockdev.disk import BLOCK_SIZE
from repro.blockdev.volume import Volume

_snapshot_ids = itertools.count(1)


class SnapshotVolume:
    """A read-only, point-in-time image of an origin volume."""

    def __init__(self, origin: "SnapshottableVolume", name: str):
        self.origin = origin
        self.name = name
        self.snapshot_id = next(_snapshot_ids)
        self.size = origin.size
        self.iqn: Optional[str] = None
        #: private copies of origin blocks overwritten after the snapshot
        self._cow_blocks: dict[int, bytes] = {}

    @property
    def cow_bytes(self) -> int:
        return len(self._cow_blocks) * BLOCK_SIZE

    def preserve(self, block_index: int, data: bytes) -> None:
        """Record the pre-overwrite content of one block (first write wins)."""
        if block_index not in self._cow_blocks:
            self._cow_blocks[block_index] = bytes(data)

    # -- volume-compatible read interface --------------------------------

    def _compose(self, offset: int, length: int, underlying: bytes) -> bytes:
        out = bytearray(underlying)
        first = offset // BLOCK_SIZE
        for i in range(length // BLOCK_SIZE):
            preserved = self._cow_blocks.get(first + i)
            if preserved is not None:
                out[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE] = preserved
        return bytes(out)

    def read(self, offset: int, length: int):
        """Simulated read (generator), like :meth:`Volume.read`."""
        underlying = yield from self.origin.read(offset, length)
        return self._compose(offset, length, underlying or bytes(length))

    def read_sync(self, offset: int, length: int) -> bytes:
        return self._compose(offset, length, self.origin.read_sync(offset, length))

    def write(self, offset: int, length: int, data: Optional[bytes] = None):
        raise PermissionError(f"snapshot {self.name!r} is read-only")

    def write_sync(self, offset: int, data: bytes) -> None:
        raise PermissionError(f"snapshot {self.name!r} is read-only")

    def __repr__(self) -> str:
        return f"SnapshotVolume({self.name}, of={self.origin.name}, cow={self.cow_bytes}B)"


class SnapshottableVolume:
    """Wraps a :class:`Volume`, copy-on-writing into active snapshots."""

    def __init__(self, volume: Volume):
        self._volume = volume
        self.snapshots: list[SnapshotVolume] = []

    # -- delegation ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._volume.name

    @property
    def size(self) -> int:
        return self._volume.size

    @property
    def iqn(self):
        return self._volume.iqn

    @iqn.setter
    def iqn(self, value):
        self._volume.iqn = value

    def read(self, offset: int, length: int):
        return self._volume.read(offset, length)

    def read_sync(self, offset: int, length: int) -> bytes:
        return self._volume.read_sync(offset, length)

    def transform_sync(self, fn) -> int:
        return self._volume.transform_sync(fn)

    # -- copy-on-write paths -----------------------------------------------

    def _preserve_into_snapshots(self, offset: int, length: int) -> None:
        if not self.snapshots:
            return
        old = self._volume.read_sync(offset, length)
        first = offset // BLOCK_SIZE
        for i in range(length // BLOCK_SIZE):
            chunk = old[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            for snapshot in self.snapshots:
                snapshot.preserve(first + i, chunk)

    def write(self, offset: int, length: int, data: Optional[bytes] = None):
        self._preserve_into_snapshots(offset, length)
        return self._volume.write(offset, length, data)

    def write_sync(self, offset: int, data: bytes) -> None:
        self._preserve_into_snapshots(offset, len(data))
        self._volume.write_sync(offset, data)

    # -- snapshot lifecycle ---------------------------------------------------

    def create_snapshot(self, name: str) -> SnapshotVolume:
        if any(s.name == name for s in self.snapshots):
            raise ValueError(f"snapshot {name!r} already exists")
        snapshot = SnapshotVolume(self, name)
        self.snapshots.append(snapshot)
        return snapshot

    def delete_snapshot(self, name: str) -> None:
        before = len(self.snapshots)
        self.snapshots = [s for s in self.snapshots if s.name != name]
        if len(self.snapshots) == before:
            raise ValueError(f"no snapshot named {name!r}")
