"""Block-storage substrate: disks, volumes, volume groups.

Mirrors the paper's storage host: one physical SATA disk per storage
node, carved into logical volumes by an LVM-like volume group, served
over iSCSI by :mod:`repro.iscsi`.  Disks store real bytes (sparse, at
4 KiB granularity) so services like encryption are functionally
verifiable, and charge simulated service time per operation.
"""

from repro.blockdev.disk import Disk, DiskIOError, DiskStats
from repro.blockdev.volume import Volume, VolumeGroup
from repro.blockdev.snapshot import SnapshotVolume, SnapshottableVolume

__all__ = [
    "Disk",
    "DiskIOError",
    "DiskStats",
    "SnapshotVolume",
    "SnapshottableVolume",
    "Volume",
    "VolumeGroup",
]
