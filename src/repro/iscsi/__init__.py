"""iSCSI protocol substrate.

The paper's clouds speak iSCSI between a host-side initiator (the
compute node — *not* the VM, which is why connection attribution is
hard) and per-volume targets on the storage hosts.  This module
implements the protocol at PDU granularity over :mod:`repro.net.tcp`:
login sessions (with the hook the paper adds to expose IQN↔port
mappings), SCSI read/write commands, Data-In, and responses.
"""

from repro.iscsi.pdu import (
    BHS_SIZE,
    DataInPdu,
    LoginRequestPdu,
    LoginResponsePdu,
    ScsiCommandPdu,
    ScsiResponsePdu,
    volume_iqn,
)
from repro.iscsi.initiator import IscsiInitiator, IscsiSession, SessionDead
from repro.iscsi.target import IscsiTarget

__all__ = [
    "BHS_SIZE",
    "DataInPdu",
    "IscsiInitiator",
    "IscsiSession",
    "IscsiTarget",
    "LoginRequestPdu",
    "LoginResponsePdu",
    "ScsiCommandPdu",
    "ScsiResponsePdu",
    "SessionDead",
    "volume_iqn",
]
