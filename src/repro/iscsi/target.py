"""Storage-host iSCSI target (tgt-like).

Exports volumes one-IQN-per-volume (the OpenStack/Cinder pattern),
accepts logins, and executes SCSI commands against the backing
volumes.  An optional CPU meter charges the storage host for request
handling — this is where the target-side ~25% CPU of the paper's
Figure 10 comes from.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.blockdev import DiskIOError, Volume
from repro.iscsi.pdu import (
    DataInPdu,
    ISCSI_PORT,
    LoginRequestPdu,
    LoginResponsePdu,
    ScsiCommandPdu,
    ScsiResponsePdu,
    volume_iqn,
)
from repro.net.stack import NetworkStack
from repro.net.tcp import ConnectionReset, EOF, RESET, TcpListener, TcpSocket
from repro.sim import Simulator

#: CPU charged on the storage host per request and per payload byte.
PER_IO_CPU = 20e-6
PER_BYTE_CPU = 5.0e-9


class IscsiTarget:
    """Listens on 3260, serves logins and SCSI commands."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        ip: str,
        port: int = ISCSI_PORT,
        cpu=None,
        mss: int = 4096,
        window: int = 65536,
        reliable: bool = False,
        rto: float = 0.05,
        max_retransmits: int = 8,
    ):
        self.sim = sim
        self.stack = stack
        self.ip = ip
        self.port = port
        self.cpu = cpu  # object with .consume(seconds) generator, or None
        self.exports: dict[str, Volume] = {}
        self.listener = TcpListener(
            sim,
            stack,
            ip,
            port,
            mss=mss,
            window=window,
            reliable=reliable,
            rto=rto,
            max_retransmits=max_retransmits,
        )
        self.listener.express_label = f"target:{ip}"
        self.io_errors = 0
        #: :class:`repro.integrity.IntegrityLayer` (set by the cloud
        #: controller when ``params.integrity``): commands are verified
        #: before execution — a violation answers "check-integrity"
        #: instead of touching the volume — and Data-In PDUs are
        #: stamped for the return path.  None = zero overhead.
        self.integrity = None
        self.integrity_rejections = 0
        #: observability bus hook (set by ``repro.obs.instrument``);
        #: when non-None each command executes under a child span of the
        #: initiator's context.  None = zero overhead.
        self.obs = None
        #: Called with (initiator_iqn, target_iqn, remote_ip, remote_port)
        #: on every login — target-side half of connection attribution.
        self.login_hooks: list[Callable[[str, str, str, int], None]] = []
        self.commands_served = 0
        sim.process(self._accept_loop(), name=f"iscsi-target:{ip}")

    def export(self, volume: Volume, iqn: Optional[str] = None) -> str:
        iqn = iqn or volume_iqn(volume.name)
        if iqn in self.exports:
            raise ValueError(f"IQN {iqn} already exported")
        volume.iqn = iqn
        self.exports[iqn] = volume
        return iqn

    def unexport(self, iqn: str) -> None:
        self.exports.pop(iqn, None)

    # -- connection handling -------------------------------------------

    def _accept_loop(self):
        while True:
            socket: TcpSocket = yield self.listener.accept()
            self.sim.process(self._serve(socket), name=f"iscsi-conn:{socket.remote_ip}")

    def _serve(self, socket: TcpSocket):
        volume: Optional[Volume] = None
        while True:
            got = yield socket.recv()
            if got is RESET or got is EOF:
                return
            pdu, _size = got
            if isinstance(pdu, LoginRequestPdu):
                volume = self.exports.get(pdu.target_iqn)
                status = "success" if volume is not None else "target-not-found"
                response = LoginResponsePdu(pdu.target_iqn, status)
                socket.send(response, response.wire_size)
                if volume is not None:
                    for hook in self.login_hooks:
                        hook(pdu.initiator_iqn, pdu.target_iqn, socket.remote_ip, socket.remote_port)
                continue
            if isinstance(pdu, ScsiCommandPdu):
                if volume is None:
                    error = ScsiResponsePdu(pdu.task_tag, "error")
                    socket.send(error, error.wire_size)
                    continue
                self.sim.process(self._execute(socket, volume, pdu))

    def _execute(self, socket: TcpSocket, volume: Volume, command: ScsiCommandPdu):
        if self.integrity is not None:
            bad = self.integrity.verify(
                command, volume.iqn, "upstream", where="target"
            )
            if bad is not None:
                # SCSI check condition: the command never touches the
                # volume; the initiator retries it with a fresh stamp
                self.integrity_rejections += 1
                response = ScsiResponsePdu(command.task_tag, "check-integrity")
                response.ctx = command.ctx
                self._respond(socket, response)
                return
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.span(
                "target.execute",
                parent=command.ctx,
                op=command.op,
                length=command.length,
            )
            obs.metrics.counter(f"target.{command.op}", self.ip).inc()
        if self.cpu is not None:
            yield from self.cpu.consume(PER_IO_CPU + PER_BYTE_CPU * command.length)
        self.commands_served += 1
        try:
            if command.op == "write":
                yield from volume.write(command.offset, command.length, command.data)
                response = ScsiResponsePdu(command.task_tag, "good")
                if span is not None:
                    response.ctx = span.context()
                    span.finish("ok")
                self._respond(socket, response)
                return
            data = yield from volume.read(command.offset, command.length)
        except DiskIOError:
            # a medium error becomes a SCSI check condition, not a dead
            # target: the initiator fails that one command
            self.io_errors += 1
            response = ScsiResponsePdu(command.task_tag, "io-error")
            if span is not None:
                response.ctx = span.context()
                span.finish("io-error")
            self._respond(socket, response)
            return
        data_in = DataInPdu(command.task_tag, command.length, data, offset=command.offset)
        if self.integrity is not None:
            self.integrity.stamp(data_in, volume.iqn, "downstream", "target")
        response = ScsiResponsePdu(command.task_tag, "good")
        if span is not None:
            ctx = span.context()
            data_in.ctx = ctx
            response.ctx = ctx
            span.finish("ok")
        self._respond(socket, data_in)
        self._respond(socket, response)

    @staticmethod
    def _respond(socket: TcpSocket, pdu) -> None:
        """Send a reply, tolerating a connection that died mid-command."""
        try:
            socket.send(pdu, pdu.wire_size)
        except ConnectionReset:
            pass
