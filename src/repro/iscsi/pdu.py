"""iSCSI protocol data units.

Every PDU has a 48-byte basic header segment; write commands carry
immediate data and Data-In PDUs carry read payloads.  ``wire_size``
is what TCP charges for the transfer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

BHS_SIZE = 48
ISCSI_PORT = 3260

_task_tags = itertools.count(1)


def next_task_tag() -> int:
    return next(_task_tags)


def volume_iqn(volume_name: str) -> str:
    """OpenStack-style one-target-per-volume IQN."""
    return f"iqn.2016-01.org.repro:{volume_name}"


@dataclass
class LoginRequestPdu:
    initiator_iqn: str
    target_iqn: str
    #: trace context (:class:`repro.obs.TraceContext`) — joins the wire
    #: transfer of this PDU to a request's span tree; None when off
    ctx: Any = field(default=None, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        return BHS_SIZE + len(self.initiator_iqn) + len(self.target_iqn)


@dataclass
class LoginResponsePdu:
    target_iqn: str
    status: str  # "success" | "target-not-found"
    ctx: Any = field(default=None, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        return BHS_SIZE


@dataclass
class ScsiCommandPdu:
    op: str  # "read" | "write"
    offset: int
    length: int
    task_tag: int
    data: Optional[bytes] = None  # immediate data for writes
    ctx: Any = field(default=None, repr=False, compare=False)
    #: end-to-end integrity stamp (:class:`repro.integrity.IntegrityTag`)
    #: riding the PDU as an AHS extension; None when integrity is off
    tag: Any = field(default=None, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        size = BHS_SIZE + (self.length if self.op == "write" else 0)
        if self.tag is not None:
            size += self.tag.wire_size
        return size


@dataclass
class DataInPdu:
    task_tag: int
    length: int
    data: Optional[bytes] = None
    #: volume byte offset the data came from — lets positional ciphers
    #: (CTR/keystream) decrypt read payloads without per-tag state
    offset: int = 0
    ctx: Any = field(default=None, repr=False, compare=False)
    tag: Any = field(default=None, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        size = BHS_SIZE + self.length
        if self.tag is not None:
            size += self.tag.wire_size
        return size


@dataclass
class ScsiResponsePdu:
    task_tag: int
    status: str  # "good" | "error" | "io-error" | "check-integrity"
    ctx: Any = field(default=None, repr=False, compare=False)

    @property
    def wire_size(self) -> int:
        return BHS_SIZE
