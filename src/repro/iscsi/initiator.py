"""Host-side iSCSI initiator.

Runs on the *compute host* (as Open-iSCSI does), so the TCP 4-tuple of
a storage connection bears host addresses — the obfuscation StorM's
connection attribution must undo.  ``login_hooks`` is the reproduction
of the paper's modification to the iSCSI "Login Session" code: it
exposes the (IQN, source port) pair of every new session.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.iscsi.pdu import (
    DataInPdu,
    ISCSI_PORT,
    LoginRequestPdu,
    LoginResponsePdu,
    ScsiCommandPdu,
    ScsiResponsePdu,
    next_task_tag,
)
from repro.net.stack import NetworkStack
from repro.net.tcp import EOF, RESET, TcpSocket
from repro.sim import Event, Simulator


class SessionDead(Exception):
    """The session's TCP connection was reset or closed."""


class LoginFailed(Exception):
    """The target rejected the login (unknown IQN)."""


class IscsiSession:
    """One logged-in connection to one target IQN (one volume)."""

    def __init__(self, sim: Simulator, socket: TcpSocket, target_iqn: str):
        self.sim = sim
        self.socket = socket
        self.target_iqn = target_iqn
        self.local_port = socket.local_port
        self.alive = True
        self._pending: dict[int, dict] = {}
        sim.process(self._receiver(), name=f"iscsi-rx:{target_iqn}")
        self.reads_completed = 0
        self.writes_completed = 0

    # -- I/O interface ------------------------------------------------

    def read(self, offset: int, length: int) -> Event:
        """Returns an event yielding the read payload bytes (or None)."""
        return self._issue(ScsiCommandPdu("read", offset, length, next_task_tag()))

    def write(self, offset: int, length: int, data: Optional[bytes] = None) -> Event:
        """Returns an event that fires when the target acknowledges."""
        return self._issue(ScsiCommandPdu("write", offset, length, next_task_tag(), data))

    def _issue(self, command: ScsiCommandPdu) -> Event:
        if not self.alive:
            raise SessionDead(f"session to {self.target_iqn} is down")
        done = self.sim.event()
        self._pending[command.task_tag] = {"event": done, "data": None, "op": command.op}
        self.socket.send(command, command.wire_size)
        return done

    def close(self) -> None:
        self.alive = False
        self.socket.close()

    def reset(self) -> None:
        """Abort the session (failure injection)."""
        self.socket.reset()

    # -- receive path ----------------------------------------------------

    def _receiver(self):
        while True:
            got = yield self.socket.recv()
            if got is RESET or got is EOF:
                self._fail_all()
                return
            pdu, _size = got
            if isinstance(pdu, DataInPdu):
                record = self._pending.get(pdu.task_tag)
                if record is not None:
                    record["data"] = pdu.data
            elif isinstance(pdu, ScsiResponsePdu):
                record = self._pending.pop(pdu.task_tag, None)
                if record is None:
                    continue
                if record["op"] == "read":
                    self.reads_completed += 1
                else:
                    self.writes_completed += 1
                if pdu.status == "good":
                    record["event"].succeed(record["data"])
                else:
                    record["event"].fail(SessionDead(f"I/O error: {pdu.status}"))

    def _fail_all(self) -> None:
        self.alive = False
        pending, self._pending = self._pending, {}
        for record in pending.values():
            if not record["event"].triggered:
                record["event"].fail(SessionDead("connection lost"))


class IscsiInitiator:
    """Factory for sessions from one host; owns the login hook list."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        local_ip: str,
        initiator_iqn: str = "iqn.2016-01.org.repro:initiator",
        mss: int = 4096,
        window: int = 65536,
    ):
        self.sim = sim
        self.stack = stack
        self.local_ip = local_ip
        self.initiator_iqn = initiator_iqn
        self.mss = mss
        self.window = window
        self.sessions: list[IscsiSession] = []
        #: Called with (target_iqn, local_port) on every successful login —
        #: the paper's modified Login Session code path.
        self.login_hooks: list[Callable[[str, int], None]] = []

    def connect(self, target_ip: str, target_iqn: str, target_port: int = ISCSI_PORT):
        """Process: TCP connect + iSCSI login; returns an IscsiSession."""
        socket = TcpSocket(
            self.sim,
            self.stack,
            local_ip=self.local_ip,
            local_port=self.stack.allocate_port(),
            mss=self.mss,
            window=self.window,
        )
        yield socket.connect(target_ip, target_port)
        login = LoginRequestPdu(self.initiator_iqn, target_iqn)
        socket.send(login, login.wire_size)
        got = yield socket.recv()
        if got is RESET or got is EOF:
            raise SessionDead("connection lost during login")
        response, _size = got
        if not isinstance(response, LoginResponsePdu) or response.status != "success":
            raise LoginFailed(f"login to {target_iqn} failed: {response!r}")
        session = IscsiSession(self.sim, socket, target_iqn)
        self.sessions.append(session)
        for hook in self.login_hooks:
            hook(target_iqn, socket.local_port)
        return session
