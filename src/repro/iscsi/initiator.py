"""Host-side iSCSI initiator.

Runs on the *compute host* (as Open-iSCSI does), so the TCP 4-tuple of
a storage connection bears host addresses — the obfuscation StorM's
connection attribution must undo.  ``login_hooks`` is the reproduction
of the paper's modification to the iSCSI "Login Session" code: it
exposes the (IQN, source port) pair of every new session.

Session recovery (``recover=True``) mirrors Open-iSCSI's replacement
timeout behaviour: when the TCP connection dies the session re-logs-in
with bounded exponential backoff — **reusing the same source port**, so
gateway conntrack entries and narrowed steering rules keep matching the
reconnected flow — and re-issues every pending command in task-tag
order.  Commands issued while the session is down are queued and ride
the same replay.  Only when every attempt fails does the session fall
back to failing all pending commands (`SessionDead`).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.integrity import IntegrityError
from repro.iscsi.pdu import (
    DataInPdu,
    ISCSI_PORT,
    LoginRequestPdu,
    LoginResponsePdu,
    ScsiCommandPdu,
    ScsiResponsePdu,
    next_task_tag,
)
from repro.net.stack import NetworkStack
from repro.net.tcp import ConnectionReset, EOF, RESET, TcpSocket
from repro.sim import Event, Simulator


class SessionDead(Exception):
    """The session's TCP connection was reset or closed."""


class LoginFailed(Exception):
    """The target rejected the login (unknown IQN)."""


class IscsiSession:
    """One logged-in connection to one target IQN (one volume)."""

    def __init__(
        self,
        sim: Simulator,
        socket: TcpSocket,
        target_iqn: str,
        initiator_iqn: str = "iqn.2016-01.org.repro:initiator",
        recover: bool = False,
        max_relogins: int = 5,
        relogin_backoff: float = 0.05,
        login_timeout: float = 1.0,
        event_log=None,
        obs=None,
        integrity=None,
    ):
        self.sim = sim
        self.socket = socket
        self.target_iqn = target_iqn
        self.initiator_iqn = initiator_iqn
        self.local_port = socket.local_port
        self.target_ip = socket.remote_ip
        self.target_port = socket.remote_port or ISCSI_PORT
        self.recover = recover
        self.max_relogins = max_relogins
        self.relogin_backoff = relogin_backoff
        self.login_timeout = login_timeout
        self.event_log = event_log
        #: observability bus; when set, every command runs under a span
        #: whose context rides the PDU across the chain.  None = no-op.
        self.obs = obs
        #: :class:`repro.integrity.IntegrityLayer`; when set, commands
        #: are stamped at issue, Data-In payloads verified on arrival,
        #: and verified-corrupt commands retried with fresh stamps.
        self.integrity = integrity
        self.integrity_retries = 0
        self.alive = True
        self._closed = False
        self._pending: dict[int, dict] = {}
        sim.process(self._receiver(), name=f"iscsi-rx:{target_iqn}")
        self.reads_completed = 0
        self.writes_completed = 0
        self.relogins = 0
        self.commands_reissued = 0

    # -- I/O interface ------------------------------------------------

    def read(self, offset: int, length: int) -> Event:
        """Returns an event yielding the read payload bytes (or None)."""
        return self._issue(ScsiCommandPdu("read", offset, length, next_task_tag()))

    def write(self, offset: int, length: int, data: Optional[bytes] = None) -> Event:
        """Returns an event that fires when the target acknowledges."""
        return self._issue(ScsiCommandPdu("write", offset, length, next_task_tag(), data))

    def _issue(self, command: ScsiCommandPdu) -> Event:
        if not self.alive:
            raise SessionDead(f"session to {self.target_iqn} is down")
        done = self.sim.event()
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.span(
                f"iscsi.{command.op}",
                target=self.target_iqn,
                offset=command.offset,
                length=command.length,
            )
            command.ctx = span.context()
        if self.integrity is not None:
            self.integrity.stamp(command, self.target_iqn, "upstream", "initiator")
        self._pending[command.task_tag] = {
            "event": done,
            "data": None,
            "op": command.op,
            "command": command,
            "span": span,
            # retry material: services rebind pdu.data in flight on the
            # same object this table aliases, so retries rebuild a fresh
            # PDU from the payload as issued
            "pristine": command.data,
            "tainted": False,
            "iretries": 0,
        }
        try:
            self.socket.send(command, command.wire_size)
        except ConnectionReset:
            if not self.recover:
                del self._pending[command.task_tag]
                raise SessionDead(f"session to {self.target_iqn} is down")
            # recovery pending: the command stays queued and is sent by
            # the re-login replay in task-tag order
        return done

    def close(self) -> None:
        self.alive = False
        self._closed = True
        self.socket.close()

    def reset(self) -> None:
        """Abort the session (failure injection)."""
        self.socket.reset()

    # -- receive path ----------------------------------------------------

    def _receiver(self):
        while True:
            got = yield self.socket.recv()
            if got is RESET or got is EOF:
                if got is RESET and self.recover and not self._closed:
                    ok = yield from self._relogin_attempts()
                    if ok:
                        continue
                self._fail_all()
                return
            pdu, _size = got
            if isinstance(pdu, DataInPdu):
                record = self._pending.get(pdu.task_tag)
                if record is not None:
                    if self.integrity is not None:
                        bad = self.integrity.verify(
                            pdu, self.target_iqn, "downstream", where="initiator"
                        )
                        if bad is not None:
                            # verified-corrupt read payload: taint the
                            # command; the matching response triggers a
                            # retry instead of delivering garbage
                            record["tainted"] = True
                            record["data"] = None
                            continue
                    record["data"] = pdu.data
            elif isinstance(pdu, ScsiResponsePdu):
                record = self._pending.pop(pdu.task_tag, None)
                if record is None:
                    continue
                if self.integrity is not None and (
                    pdu.status == "check-integrity"
                    or (pdu.status == "good" and record["tainted"])
                ):
                    # SCSI check condition (target-side detection) or a
                    # tainted read: re-drive the command end-to-end with
                    # a fresh stamp, bounded by the layer's retry budget
                    if record["iretries"] < self.integrity.max_retries:
                        self._integrity_retry(record)
                        continue
                    span = record["span"]
                    if span is not None:
                        span.finish("integrity-failed")
                    record["event"].fail(
                        IntegrityError(
                            f"{record['op']} to {self.target_iqn} still "
                            f"corrupt after {record['iretries']} retries"
                        )
                    )
                    continue
                if record["op"] == "read":
                    self.reads_completed += 1
                else:
                    self.writes_completed += 1
                span = record["span"]
                if span is not None:
                    span.finish("ok" if pdu.status == "good" else "error")
                if pdu.status == "good":
                    record["event"].succeed(record["data"])
                else:
                    record["event"].fail(SessionDead(f"I/O error: {pdu.status}"))

    def _integrity_retry(self, record: dict) -> None:
        """Re-drive one verified-corrupt command: fresh PDU built from
        the payload as issued (in-flight transforms rebind ``data`` on
        the aliased object), fresh stamp (sequence numbers never
        repeat, so the retry is not itself flagged as a replay), same
        task tag (the pending table keeps matching)."""
        old = record["command"]
        data = record["pristine"] if old.op == "write" else None
        command = ScsiCommandPdu(old.op, old.offset, old.length, old.task_tag, data)
        command.ctx = old.ctx
        self.integrity.stamp(command, self.target_iqn, "upstream", "initiator")
        record["command"] = command
        record["data"] = None
        record["tainted"] = False
        record["iretries"] += 1
        self._pending[command.task_tag] = record
        self.integrity_retries += 1
        self.integrity.retries += 1
        obs = self.integrity.obs
        if obs is not None:
            obs.event(
                "integrity.retry", target=self.target_iqn,
                op=old.op, offset=old.offset, attempt=record["iretries"],
            )
            obs.metrics.counter("integrity.retries", self.target_iqn).inc()
        try:
            self.socket.send(command, command.wire_size)
        except ConnectionReset:
            # the receiver loop sees the RESET and either replays the
            # pending table on re-login or fails everything
            pass

    # -- recovery --------------------------------------------------------

    def relogin(self):
        """Process: explicitly re-login a dead session.

        Used by consumers that keep their own durable state (e.g. the
        replication service's journal) and want the session back after
        a `_fail_all` — the automatic path (``recover=True``) never
        reaches `_fail_all` unless every attempt was exhausted.
        Restarts the receive loop on success.
        """
        if self._closed:
            return False
        if self.alive and self.socket.state == "established":
            return True
        ok = yield from self._relogin_attempts()
        if ok:
            self.alive = True
            self.sim.process(self._receiver(), name=f"iscsi-rx:{self.target_iqn}")
        return ok

    def _relogin_attempts(self):
        """Bounded exponential-backoff reconnect + login + replay."""
        old = self.socket
        for attempt in range(1, self.max_relogins + 1):
            yield self.sim.timeout(self.relogin_backoff * (2 ** (attempt - 1)))
            if self._closed:
                return False
            # same local port: gateway conntrack and narrowed steering
            # rules key on the 4-tuple, which must not change
            socket = TcpSocket(
                self.sim,
                old.stack,
                local_ip=old.local_ip,
                local_port=self.local_port,
                mss=old.mss,
                window=old.window,
                reliable=old.reliable,
                rto=old.rto,
                max_retransmits=old.max_retransmits,
            )
            socket.express_label = old.express_label
            try:
                established = socket.connect(self.target_ip, self.target_port)
                yield self.sim.any_of(
                    [established, self.sim.timeout(self.login_timeout, "timeout")]
                )
            except ConnectionReset:
                continue
            if socket.state != "established":
                socket.reset()
                continue
            login = LoginRequestPdu(self.initiator_iqn, self.target_iqn)
            try:
                socket.send(login, login.wire_size)
            except ConnectionReset:
                continue
            got = yield socket.recv()
            if got is RESET or got is EOF:
                continue
            response, _size = got
            if not isinstance(response, LoginResponsePdu) or response.status != "success":
                socket.reset()
                continue
            self.socket = socket
            self.relogins += 1
            if self.event_log is not None:
                self.event_log.record(
                    self.sim.now,
                    "recover.relogin",
                    self.target_iqn,
                    attempt=attempt,
                    port=self.local_port,
                )
            self._reissue_pending()
            return True
        if self.event_log is not None:
            self.event_log.record(
                self.sim.now, "recover.relogin-failed", self.target_iqn
            )
        return False

    def _reissue_pending(self) -> None:
        """Re-send every pending command, in task-tag (issue) order.

        Writes are idempotent (same offset, same payload) and reads are
        side-effect-free, so re-execution at the target is safe; any
        partially received Data-In is discarded and re-read.
        """
        for record in self._pending.values():
            record["data"] = None
            command = record["command"]
            if self.integrity is not None:
                # rebuild from the pristine payload with a fresh stamp:
                # the original PDU object may carry in-flight transforms
                # and a consumed sequence number
                data = record["pristine"] if command.op == "write" else None
                fresh = ScsiCommandPdu(
                    command.op, command.offset, command.length,
                    command.task_tag, data,
                )
                fresh.ctx = command.ctx
                self.integrity.stamp(fresh, self.target_iqn, "upstream", "initiator")
                record["command"] = fresh
                record["tainted"] = False
                command = fresh
            self.commands_reissued += 1
            self.socket.send(command, command.wire_size)

    def _fail_all(self) -> None:
        self.alive = False
        pending, self._pending = self._pending, {}
        for record in pending.values():
            span = record.get("span")
            if span is not None:
                span.finish("lost")
            if not record["event"].triggered:
                record["event"].fail(SessionDead("connection lost"))


class IscsiInitiator:
    """Factory for sessions from one host; owns the login hook list."""

    def __init__(
        self,
        sim: Simulator,
        stack: NetworkStack,
        local_ip: str,
        initiator_iqn: str = "iqn.2016-01.org.repro:initiator",
        mss: int = 4096,
        window: int = 65536,
        reliable: bool = False,
        rto: float = 0.05,
        max_retransmits: int = 8,
        recover: bool = False,
        max_relogins: int = 5,
        relogin_backoff: float = 0.05,
        event_log=None,
    ):
        self.sim = sim
        self.stack = stack
        self.local_ip = local_ip
        self.initiator_iqn = initiator_iqn
        self.mss = mss
        self.window = window
        self.reliable = reliable
        self.rto = rto
        self.max_retransmits = max_retransmits
        self.recover = recover
        self.max_relogins = max_relogins
        self.relogin_backoff = relogin_backoff
        self.event_log = event_log
        #: observability bus, propagated to every session this factory
        #: creates (set by ``repro.obs.instrument``); None = no tracing.
        self.obs = None
        #: integrity layer, propagated likewise (set by the cloud
        #: controller when ``params.integrity``); None = no stamping.
        self.integrity = None
        self.sessions: list[IscsiSession] = []
        #: Called with (target_iqn, local_port) on every successful login —
        #: the paper's modified Login Session code path.
        self.login_hooks: list[Callable[[str, int], None]] = []

    def connect(
        self,
        target_ip: str,
        target_iqn: str,
        target_port: int = ISCSI_PORT,
        recover: Optional[bool] = None,
    ):
        """Process: TCP connect + iSCSI login; returns an IscsiSession."""
        socket = TcpSocket(
            self.sim,
            self.stack,
            local_ip=self.local_ip,
            local_port=self.stack.allocate_port(),
            mss=self.mss,
            window=self.window,
            reliable=self.reliable,
            rto=self.rto,
            max_retransmits=self.max_retransmits,
        )
        socket.express_label = f"iscsi:{target_iqn}"
        yield socket.connect(target_ip, target_port)
        login = LoginRequestPdu(self.initiator_iqn, target_iqn)
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.span("iscsi.login", target=target_iqn)
            login.ctx = span.context()
        socket.send(login, login.wire_size)
        got = yield socket.recv()
        if got is RESET or got is EOF:
            if span is not None:
                span.finish("lost")
            raise SessionDead("connection lost during login")
        response, _size = got
        if not isinstance(response, LoginResponsePdu) or response.status != "success":
            if span is not None:
                span.finish("rejected")
            raise LoginFailed(f"login to {target_iqn} failed: {response!r}")
        if span is not None:
            span.finish("ok")
        session = IscsiSession(
            self.sim,
            socket,
            target_iqn,
            initiator_iqn=self.initiator_iqn,
            recover=self.recover if recover is None else recover,
            max_relogins=self.max_relogins,
            relogin_backoff=self.relogin_backoff,
            event_log=self.event_log,
            obs=obs,
            integrity=self.integrity,
        )
        self.sessions.append(session)
        for hook in self.login_hooks:
            hook(target_iqn, socket.local_port)
        return session
